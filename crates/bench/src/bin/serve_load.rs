//! `serve_load` — closed-loop load generator and scaling bench for the
//! `darkside-serve` sharded engine (ISSUE 5, re-based on ISSUE 7).
//!
//! Three measurement families:
//!
//! 1. **Policy × sparsity matrix** (single shard, the ISSUE 5/6 cells,
//!    precision axis added by ISSUE 10): dense / 90 %-unstructured /
//!    90 %-tiled / 90 %-tiled-int8 bundles under all three pruning
//!    policies, closed loop at fixed concurrency. Per cell:
//!    served throughput (frames/s), submit→final latency percentiles, and
//!    the same utterances decoded **sequentially** as the baseline the
//!    micro-batched engine must beat. This is the paper's tail-latency
//!    story at the serving boundary: pruning inflates per-frame search
//!    work, the inflation lands in the served p99, and the bounded loose
//!    N-best policy caps it while the plain beam lets it through.
//! 2. **Scaling sweep** (ISSUE 7 tentpole): sessions × shard-count grid on
//!    the structured-90 % N-best bundle, recording where adding shards
//!    stops paying (the *knee*: smallest shard count within 95 % of the
//!    row's best throughput).
//! 3. **Runtime scenarios**: explicit admission shedding under overload,
//!    SLO-aware shedding under an artificially slow scorer, and
//!    drain-termination with work stealing enabled.
//!
//! Checked gates (CI runs `--smoke`):
//!
//! * with ≥ 8 concurrent sessions at 90 % sparsity, micro-batched
//!   scheduling beats sequential per-session decoding on throughput;
//! * LooseNBest served p99 ≤ Beam served p99 at 90 % sparsity;
//! * structured (8×8-tiled, BSR-served) 90 % sparsity beats *dense* served
//!   throughput in every policy cell (paired sign test, ISSUE 6);
//! * quantized (int8, quantized-BSR-served) 90 % sparsity at least matches
//!   the f32 BSR path's served throughput in every policy cell (paired
//!   sign test, ISSUE 10);
//! * 2 shards beat 1 shard at 64 sessions (paired sign test) — enforced
//!   only on hosts with ≥ 2 cores; a single-core host (where the win is
//!   physically impossible) instead checks sharding doesn't collapse
//!   throughput, and records `host_cores` so the artifact is honest;
//! * with an SLO configured and a slow scorer injected, admission sheds
//!   offers with the typed `SloBreach` reason and still drains clean;
//! * an engine offered more load than its admission budget rejects the
//!   excess explicitly and still drains to empty;
//! * draining with work stealing terminates, and the dry shards actually
//!   steal the stranded sessions;
//! * with the dark-side detector armed (ISSUE 9), ≥ 90 % of 90 %-sparse
//!   beam sessions flag within 50 frames, and the dense control flags
//!   none.
//!
//! Flags: `--smoke` (CI scale), `--json <path>` (write BENCH_serve.json),
//! `--sessions N` (closed-loop concurrency, default 8), `--utts N`
//! (utterance budget per cell).

use darkside_bench::report::{check, json_arg, write_json_file};
use darkside_core::acoustic::Utterance;
use darkside_core::decoder::{acoustic_costs, decode_with_policy};
use darkside_core::nn::{Frame, FrameScorer, Rng, Scores};
use darkside_core::trace::{exact_percentile, Json, WindowConfig};
use darkside_core::viterbi_accel::{NBestTableConfig, UnfoldHashConfig};
use darkside_core::{
    ModelBundle, Pipeline, PipelineConfig, PolicyKind, Precision, PruneStructure, ServableSpec,
};
use darkside_serve::{DetectorConfig, RejectReason, ServeConfig, ShardedScheduler};
use std::sync::Arc;
use std::time::Instant;

/// One measured (level, policy) cell.
struct LoadCell {
    level: String,
    /// Sparsity structure of the cell's scorer ("unstructured" / "b8x8").
    structure: String,
    /// Scoring precision of the cell's scorer ("f32" / "int8", ISSUE 10).
    precision: String,
    sparsity: f64,
    policy: &'static str,
    served_fps: f64,
    sequential_fps: f64,
    speedup: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// Per-rep p99s, in rep order (the paired CI gate compares these
    /// rep-by-rep across cells).
    p99_reps: Vec<f64>,
    /// Per-rep served throughputs, in rep order (the structured-vs-dense
    /// gate pairs these rep-by-rep across cells).
    served_fps_reps: Vec<f64>,
    /// Per-rep served/sequential throughput ratios (served and sequential
    /// are measured back-to-back inside one rep, so each ratio is
    /// noise-paired).
    speedup_reps: Vec<f64>,
    served: usize,
    degraded: u64,
    rejected: u64,
}

/// Closed-loop run: keep `concurrency` sessions in flight until every
/// utterance has been served, stepping the engine between refills.
fn run_closed_loop(
    bundle: &ModelBundle,
    cfg: ServeConfig,
    utts: &[Utterance],
    concurrency: usize,
) -> (f64, Vec<f64>, u64, u64) {
    let mut engine = ShardedScheduler::build(bundle.clone(), cfg).expect("engine");
    let total_frames: usize = utts.iter().map(|u| u.frames.len()).sum();
    let start = Instant::now();
    let mut next = 0;
    let mut latencies_ms = Vec::with_capacity(utts.len());
    let mut served = 0;
    while served < utts.len() {
        while next < utts.len() && engine.active_sessions() < concurrency {
            // The closed loop never exceeds the budget; a rejection here
            // is a bug, not load shedding.
            engine
                .offer(utts[next].frames.clone())
                .expect("closed-loop offer");
            next += 1;
        }
        engine.step().expect("step");
        for r in engine.take_completed() {
            r.decode.expect("served decode");
            latencies_ms.push(r.latency_ns as f64 / 1e6);
            served += 1;
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let admission = engine.admission();
    (
        total_frames as f64 / wall,
        latencies_ms,
        admission.degraded(),
        admission.rejected(),
    )
}

/// The baseline the engine competes with: one utterance at a time, scored
/// in its own batch, decoded on the calling thread.
fn run_sequential(bundle: &ModelBundle, utts: &[Utterance]) -> f64 {
    let total_frames: usize = utts.iter().map(|u| u.frames.len()).sum();
    let start = Instant::now();
    for u in utts {
        // Both paths consume an owned copy of the request's frames — a
        // server is handed its input, it doesn't borrow the load
        // generator's buffers.
        let frames = u.frames.clone();
        let costs = acoustic_costs(&bundle.scorer.score_frames(&frames), &bundle.beam);
        let mut policy = bundle.build_policy().expect("policy");
        decode_with_policy(&bundle.graph, &costs, policy.as_mut()).expect("sequential decode");
    }
    total_frames as f64 / start.elapsed().as_secs_f64()
}

/// Middle value of a small sorted sample (noise discipline for the CI
/// gate: one descheduled run must not decide a percentile).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Per-rep raw measurements for one (level, policy) cell. Reps are
/// **interleaved across cells** (rep 0 of every cell, then rep 1, …) so
/// time-correlated noise — a VM steal spike, a frequency shift — perturbs
/// every cell of a rep sweep alike instead of biasing whichever cell was
/// measured during it; the gate compares cells, so that bias is what
/// would flake CI.
struct RawCell {
    bundle: ModelBundle,
    policy: &'static str,
    served_fps: Vec<f64>,
    sequential_fps: Vec<f64>,
    p50s: Vec<f64>,
    p95s: Vec<f64>,
    p99s: Vec<f64>,
    served: usize,
    degraded: u64,
    rejected: u64,
}

impl RawCell {
    fn run_rep(&mut self, cfg: ServeConfig, utts: &[Utterance], concurrency: usize) {
        let (fps, latencies, deg, rej) = run_closed_loop(&self.bundle, cfg, utts, concurrency);
        self.served_fps.push(fps);
        self.p50s.push(exact_percentile(&latencies, 0.50));
        self.p95s.push(exact_percentile(&latencies, 0.95));
        self.p99s.push(exact_percentile(&latencies, 0.99));
        (self.served, self.degraded, self.rejected) = (latencies.len(), deg, rej);
        self.sequential_fps.push(run_sequential(&self.bundle, utts));
    }

    /// Throughput: best rep (the least-perturbed run, as the harness
    /// benches take minimum time); latency percentiles: median across reps.
    fn fold(self) -> LoadCell {
        let best = |xs: &[f64]| xs.iter().copied().fold(0.0f64, f64::max);
        let served_fps = best(&self.served_fps);
        let sequential_fps = best(&self.sequential_fps);
        LoadCell {
            level: self.bundle.label.clone(),
            structure: self.bundle.structure.clone(),
            precision: self.bundle.precision.label().to_string(),
            sparsity: self.bundle.sparsity,
            policy: self.policy,
            served_fps,
            sequential_fps,
            speedup: served_fps / sequential_fps,
            p50_ms: median(self.p50s),
            p95_ms: median(self.p95s),
            p99_ms: median(self.p99s.clone()),
            p99_reps: self.p99s,
            speedup_reps: self
                .served_fps
                .iter()
                .zip(&self.sequential_fps)
                .map(|(s, q)| s / q)
                .collect(),
            served_fps_reps: self.served_fps,
            served: self.served,
            degraded: self.degraded,
            rejected: self.rejected,
        }
    }
}

/// One (sessions, shards) point of the scaling sweep.
struct ScalePoint {
    sessions: usize,
    shards: usize,
    served_fps: f64,
    p99_ms: f64,
    steals: u64,
}

/// The smallest shard count within 95 % of a sessions-row's best
/// throughput — where adding shards stops paying.
struct Knee {
    sessions: usize,
    knee_shards: usize,
    best_fps: f64,
}

fn run_scaling(
    bundle: &ModelBundle,
    base: ServeConfig,
    utts: &[Utterance],
    sessions_axis: &[usize],
    shards_axis: &[usize],
) -> (Vec<ScalePoint>, Vec<Knee>) {
    let mut points = Vec::new();
    let mut knees = Vec::new();
    for &sessions in sessions_axis {
        let mut row: Vec<&ScalePoint> = Vec::new();
        for &shards in shards_axis {
            let cfg = base
                .with_shards(shards)
                .with_max_sessions(sessions)
                .with_steal_threshold(32);
            let mut engine = ShardedScheduler::build(bundle.clone(), cfg).expect("engine");
            let total_frames: usize = utts.iter().map(|u| u.frames.len()).sum();
            let start = Instant::now();
            let mut next = 0;
            let mut latencies_ms = Vec::with_capacity(utts.len());
            while latencies_ms.len() < utts.len() {
                while next < utts.len() && engine.active_sessions() < sessions {
                    engine
                        .offer(utts[next].frames.clone())
                        .expect("scaling offer");
                    next += 1;
                }
                engine.step().expect("step");
                for r in engine.take_completed() {
                    r.decode.expect("served decode");
                    latencies_ms.push(r.latency_ns as f64 / 1e6);
                }
            }
            let wall = start.elapsed().as_secs_f64();
            points.push(ScalePoint {
                sessions,
                shards,
                served_fps: total_frames as f64 / wall,
                p99_ms: exact_percentile(&latencies_ms, 0.99),
                steals: engine.stats().steals,
            });
        }
        let row_start = points.len() - shards_axis.len();
        row.extend(points[row_start..].iter());
        let best = row.iter().map(|p| p.served_fps).fold(0.0f64, f64::max);
        let knee = row
            .iter()
            .find(|p| p.served_fps >= 0.95 * best)
            .expect("non-empty row");
        knees.push(Knee {
            sessions,
            knee_shards: knee.shards,
            best_fps: best,
        });
    }
    (points, knees)
}

/// Overload scenario: offer far more than the budget up front; the engine
/// must shed the excess explicitly and drain what it admitted.
struct OverloadResult {
    offered: usize,
    admitted: u64,
    degraded: u64,
    rejected: u64,
    drained: usize,
}

fn run_overload(bundle: &ModelBundle, utts: &[Utterance]) -> OverloadResult {
    let queue_budget: usize = utts.iter().take(4).map(|u| u.frames.len()).sum();
    let cfg = ServeConfig::default()
        .with_shards(1)
        .with_workers(4)
        .with_max_sessions(4)
        .with_max_queue_frames(queue_budget.max(1))
        .with_max_batch_frames(128)
        .with_degrade_fraction(0.5);
    let mut engine = ShardedScheduler::build(bundle.clone(), cfg).expect("engine");
    for u in utts {
        // Rejections are the expected outcome here — typed, not fatal.
        let _ = engine.offer(u.frames.clone());
    }
    let drained = engine.drain().expect("drain").len();
    let admission = engine.admission();
    OverloadResult {
        offered: utts.len(),
        admitted: admission.admitted(),
        degraded: admission.degraded(),
        rejected: admission.rejected(),
        drained,
    }
}

/// A scorer wrapper that burns a fixed per-frame busy-wait on top of the
/// real model — the injected "slow scorer" the SLO-shedding gate needs to
/// blow the frame-latency tail deterministically.
struct SlowScorer {
    inner: Arc<dyn FrameScorer + Send + Sync>,
    spin_ns_per_frame: u64,
}

impl FrameScorer for SlowScorer {
    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn score_frames(&self, frames: &[Frame]) -> Scores {
        let start = Instant::now();
        let out = self.inner.score_frames(frames);
        let budget = std::time::Duration::from_nanos(self.spin_ns_per_frame * frames.len() as u64);
        while start.elapsed() < budget {
            std::hint::spin_loop();
        }
        out
    }
}

/// SLO scenario: a 0.05 ms/frame p99 target against a scorer that burns
/// 0.4 ms/frame. Once the warmup window fills, admission must degrade and
/// then shed new offers with the typed `SloBreach` reason — while already
/// admitted sessions still drain to completion.
struct SloShedResult {
    offered: usize,
    admitted: u64,
    degraded: u64,
    slo_shed: u64,
    other_rejects: u64,
    drained: usize,
}

fn run_slo_shed(bundle: &ModelBundle, utts: &[Utterance]) -> SloShedResult {
    let slow = ModelBundle {
        scorer: Arc::new(SlowScorer {
            inner: bundle.scorer.clone(),
            spin_ns_per_frame: 400_000,
        }),
        ..bundle.clone()
    };
    let cfg = ServeConfig::default()
        .with_shards(1)
        .with_max_sessions(utts.len().max(1))
        .with_max_queue_frames(1 << 20)
        .with_degrade_fraction(1.0)
        .with_slo_p99_ms(0.05);
    let mut engine = ShardedScheduler::build(slow, cfg).expect("engine");
    let mut slo_shed = 0;
    let mut other_rejects = 0;
    for u in utts {
        match engine.offer(u.frames.clone()) {
            Ok(_) => {}
            Err(e) if e.reject_reason() == Some(RejectReason::SloBreach) => slo_shed += 1,
            Err(_) => other_rejects += 1,
        }
        // Step between offers so frame-latency evidence accumulates while
        // load is still arriving (shedding is only interesting mid-arrival).
        engine.step().expect("step");
    }
    let drained = engine.drain().expect("drain").len();
    let admission = engine.admission();
    SloShedResult {
        offered: utts.len(),
        admitted: admission.admitted(),
        degraded: admission.degraded(),
        slo_shed,
        other_rejects,
        drained,
    }
}

/// Detector scenario (ISSUE 9): serve one bundle with windowed telemetry
/// and the per-session dark-side detector armed, and report what the
/// health tracker saw — how many sessions flagged, how fast, and the
/// frame-margin distribution the margin check reads.
struct DetectorRun {
    sessions: usize,
    flagged: usize,
    /// Sessions whose flag landed within [`DETECT_FRAMES_BUDGET`] frames.
    flagged_within: usize,
    margin_p50: f64,
    margin_p99: f64,
    frames_to_flag_p50: f64,
    frames_to_flag_max: f64,
    /// The engine's fleet-wide telemetry snapshot (counters + windowed
    /// view), straight into the artifact.
    telemetry: Json,
}

/// The ISSUE 9 acceptance budget: a pathological session must flag within
/// this many frames.
const DETECT_FRAMES_BUDGET: u32 = 50;

fn run_detector(bundle: &ModelBundle, utts: &[Utterance], concurrency: usize) -> DetectorRun {
    let total_frames: usize = utts.iter().map(|u| u.frames.len()).sum();
    let cfg = ServeConfig::default()
        .with_shards(2)
        .with_max_sessions(concurrency.max(1))
        .with_max_queue_frames(total_frames.max(1))
        .with_max_batch_frames(1024)
        .with_degrade_fraction(1.0)
        .with_telemetry(WindowConfig::of_seconds(2.0, 8))
        // Deployment tuning, not the library default: the dense model's
        // per-frame hypothesis count bursts past 2× its own *mean*
        // baseline on ambiguous stretches, so the workload multiple sits
        // at 2.5× with a 12-frame streak — transient dense bursts reset
        // the streak, while the paper's ~3.6× sustained inflation at 90 %
        // sparsity holds the threshold for the whole window.
        .with_detector(
            DetectorConfig::default()
                .with_hyps_multiple(2.5)
                .with_window_frames(12),
        );
    let mut engine = ShardedScheduler::build(bundle.clone(), cfg).expect("detector engine");
    let mut next = 0;
    let mut flagged_at: Vec<Option<u32>> = Vec::with_capacity(utts.len());
    while flagged_at.len() < utts.len() {
        while next < utts.len() && engine.active_sessions() < concurrency {
            engine
                .offer(utts[next].frames.clone())
                .expect("detector offer");
            next += 1;
        }
        engine.step().expect("step");
        for r in engine.take_completed() {
            r.decode.expect("detector decode");
            flagged_at.push(r.flagged_at);
        }
    }
    let metrics = engine.metrics();
    let margin = metrics.histograms.get("decode.frame.margin");
    let to_flag = metrics.histograms.get("serve.detector.frames_to_flag");
    DetectorRun {
        sessions: flagged_at.len(),
        flagged: flagged_at.iter().filter(|f| f.is_some()).count(),
        flagged_within: flagged_at
            .iter()
            .filter(|f| f.is_some_and(|at| at <= DETECT_FRAMES_BUDGET))
            .count(),
        margin_p50: margin.map_or(0.0, |h| h.p50),
        margin_p99: margin.map_or(0.0, |h| h.p99),
        frames_to_flag_p50: to_flag.map_or(0.0, |h| h.p50),
        frames_to_flag_max: to_flag.map_or(0.0, |h| h.max),
        telemetry: engine.telemetry().to_json(),
    }
}

/// Steal scenario: every long utterance homes onto shard 0 (ids ≡ 0 mod
/// 4), the other shards' short sessions finish almost immediately — drain
/// must terminate with the dry shards stealing the stranded work.
struct StealDrainResult {
    offered: usize,
    drained: usize,
    steals: u64,
}

fn run_steal_drain(bundle: &ModelBundle, utts: &[Utterance]) -> StealDrainResult {
    let cfg = ServeConfig::default()
        .with_shards(4)
        .with_steal_threshold(1)
        .with_max_sessions(utts.len().max(1))
        .with_max_queue_frames(1 << 20)
        .with_max_batch_frames(64)
        .with_degrade_fraction(1.0);
    let mut engine = ShardedScheduler::build(bundle.clone(), cfg).expect("engine");
    for (i, u) in utts.iter().enumerate() {
        let mut frames = u.frames.clone();
        if i % 4 == 0 {
            // Triple the load on every shard-0 home session.
            let once = frames.clone();
            frames.extend(once.iter().cloned());
            frames.extend(once);
        }
        engine.offer(frames).expect("steal-drain offer");
    }
    let drained = engine.drain().expect("drain").len();
    StealDrainResult {
        offered: utts.len(),
        drained,
        steals: engine.stats().steals,
    }
}

fn cell_json(c: &LoadCell) -> Json {
    Json::obj(vec![
        ("level", Json::str(&c.level)),
        ("structure", Json::str(&c.structure)),
        ("precision", Json::str(&c.precision)),
        ("sparsity", c.sparsity.into()),
        ("policy", c.policy.into()),
        ("served_fps", c.served_fps.into()),
        ("sequential_fps", c.sequential_fps.into()),
        ("speedup", c.speedup.into()),
        ("latency_p50_ms", c.p50_ms.into()),
        ("latency_p95_ms", c.p95_ms.into()),
        ("latency_p99_ms", c.p99_ms.into()),
        ("served", c.served.into()),
        ("degraded", c.degraded.into()),
        ("rejected", c.rejected.into()),
    ])
}

fn usize_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == name) {
        None => default,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("error: {name} requires a count");
                std::process::exit(1);
            }),
    }
}

fn reject_unknown_args() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {}
            "--json" | "--sessions" | "--utts" => {
                // Value validity is checked by json_arg / usize_flag.
                args.next();
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?}; usage: serve_load \
                     [--smoke] [--json <path>] [--sessions <n>] [--utts <n>]"
                );
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    reject_unknown_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = json_arg().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let concurrency = usize_flag("--sessions", 8);
    let num_utts = usize_flag("--utts", if smoke { 32 } else { 64 });
    // Smoke percentiles come from few sessions, so the CI gate leans on
    // more repetitions (median-of-5) instead of more utterances. Full scale
    // needs an odd count too: the cross-cell gates are paired sign tests
    // (2·wins > reps), and with 2 reps a single noisy rep vetoes a cell.
    let reps = if smoke { 5 } else { 3 };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let start = Instant::now();

    // The serving table is deliberately tighter than exp_fig7's offline
    // sweep (32 × 8 at both scales): a serving deployment picks N for tail
    // control first — the table must bind hard enough that the clamped
    // decode is visibly cheaper than the inflated beam even on a small
    // smoke graph.
    let nbest = NBestTableConfig {
        entries: 16,
        ways: 8,
    };
    // Smoke keeps the tiny corpus/graph but serves the *production model
    // shape* (512×4, the same as default_scaled) with masked retraining:
    // the 64-wide smoke scorer costs ~4µs of a ~15µs frame budget, so every
    // cell comparison would measure the toy decoder instead of the scoring
    // path the structured-vs-dense gate is about; and without retraining
    // the 90% bundles serve a confidence-collapsed model whose hypothesis
    // inflation swamps the kernel win (a pipeline nobody ships). Fewer
    // epochs keep the build CI-sized. All cells still share one graph,
    // beam, and policy set — the scorer is the only axis that varies.
    let config = if smoke {
        PipelineConfig::smoke()
            .with_model_shape(512, 4, 4)
            .with_training(12, 8)
    } else {
        // Full scale keeps default_scaled's corpus/graph/model but the same
        // longer masked-retraining budget as smoke: the offline default
        // (3 retrain epochs) leaves a 90% structured model flat enough that
        // beam/unfold decode inflation eats the kernel win — the same
        // nobody-ships-this pipeline the smoke note describes, just slower
        // to surface. Retraining is a property of the served bundle and is
        // shared by the unstructured and structured pruned cells alike.
        PipelineConfig::default_scaled().with_training(14, 12)
    };
    let policies = [
        PolicyKind::Beam,
        PolicyKind::UnfoldHash(UnfoldHashConfig::scaled()),
        PolicyKind::LooseNBest(nbest),
    ];

    let pipeline = Pipeline::build(config).expect("pipeline build");
    let dense = pipeline.servable(ServableSpec::dense()).expect("dense");
    let pruned = pipeline
        .servable(ServableSpec::pruned(0.9))
        .expect("prune to 90%");
    // The ISSUE 6 cells: same 90 % target pruned in register-tile-aligned
    // 8×8 blocks and served BSR — the structured fast path that has to beat
    // dense where unstructured CSR could not.
    let tiled = pipeline
        .servable(ServableSpec::pruned(0.9).with_structure(PruneStructure::tile()))
        .expect("structured prune to 90%");
    // The ISSUE 10 cells: the *same* tiled 90 % model quantized to int8 and
    // served through the quantized-BSR store — identical mask, identical
    // graph/beam/policies, precision the only varying axis.
    let qtiled = pipeline
        .servable(
            ServableSpec::pruned(0.9)
                .with_structure(PruneStructure::tile())
                .with_precision(Precision::Int8),
        )
        .expect("quantized structured prune to 90%");
    // Fresh load-generator utterances, drawn from the same task the model
    // was trained on (seed disjoint from train/test sampling).
    let utts = pipeline
        .corpus
        .sample_set(num_utts, &mut Rng::new(0x005E_12FE));
    let total_frames: usize = utts.iter().map(|u| u.frames.len()).sum();

    // Matrix cells run single-shard: the policy × sparsity comparison is
    // about the scoring/decode path, so sharding stays fixed and the
    // scorer is the only varying axis. Workers follow the host: on a
    // single-core runner the one-worker fast path skips thread spawning
    // entirely (the win is then pure GEMM batch amortization); multi-core
    // runners add the decode fan-out on top. The batch cap is sized so one
    // step usually carries every in-flight utterance whole: scoring stays
    // one large GEMM per step and the per-step fan-out amortizes over
    // maximal decode work.
    let workers = host_cores.min(4);
    let cfg = ServeConfig::default()
        .with_shards(1)
        .with_workers(workers)
        .with_max_sessions(concurrency.max(1))
        .with_max_queue_frames(total_frames.max(1))
        .with_max_batch_frames(1024)
        .with_degrade_fraction(1.0); // measurement runs: full quality for all

    println!(
        "serve_load{}: {} utterances / {} frames, {} in flight, {} workers, batch cap {}, {} host cores",
        if smoke { " (smoke)" } else { "" },
        utts.len(),
        total_frames,
        cfg.max_sessions,
        cfg.workers,
        cfg.max_batch_frames,
        host_cores,
    );

    // Serving beam: tighter than the offline sweep's 15.0 for the same
    // reason the N-best table above is tighter than exp_fig7's — a serving
    // deployment tunes search for latency first. Uniform across every cell
    // (dense included), so the scorer backend stays the only varying axis;
    // a wide-open beam would let the 90% models' flatter posteriors flood
    // the cost window and the cells would measure hypothesis inflation
    // (exp_fig7's story) instead of the serving fast path (this bench's).
    // The full-scale graph has ~10× the arcs, so each surviving hypothesis
    // costs proportionally more decode — the latency-first deployment
    // tightens further there.
    let serving_beam = darkside_core::decoder::BeamConfig {
        beam: if smoke { 12.0 } else { 10.0 },
        ..dense.beam
    };

    let mut raw: Vec<RawCell> = Vec::new();
    for bundle in [&dense, &pruned, &tiled, &qtiled] {
        for policy in policies {
            raw.push(RawCell {
                bundle: bundle.with_policy(policy, serving_beam),
                policy: policy.label(),
                served_fps: Vec::new(),
                sequential_fps: Vec::new(),
                p50s: Vec::new(),
                p95s: Vec::new(),
                p99s: Vec::new(),
                served: 0,
                degraded: 0,
                rejected: 0,
            });
        }
    }
    for _ in 0..reps {
        for cell in &mut raw {
            cell.run_rep(cfg, &utts, cfg.max_sessions);
        }
    }
    let cells: Vec<LoadCell> = raw.into_iter().map(RawCell::fold).collect();

    println!(
        "| {:<7} | {:<12} | {:<4} | {:<7} | {:>10} | {:>10} | {:>7} | {:>8} | {:>8} | {:>8} |",
        "level",
        "structure",
        "prec",
        "policy",
        "served/s",
        "seq/s",
        "speedup",
        "p50-ms",
        "p95-ms",
        "p99-ms"
    );
    println!(
        "|---------|--------------|------|---------|------------|------------|---------|----------|----------|----------|"
    );
    for c in &cells {
        println!(
            "| {:<7} | {:<12} | {:<4} | {:<7} | {:>10.0} | {:>10.0} | {:>6.2}x | {:>8.2} | {:>8.2} | {:>8.2} |",
            c.level,
            c.structure,
            c.precision,
            c.policy,
            c.served_fps,
            c.sequential_fps,
            c.speedup,
            c.p50_ms,
            c.p95_ms,
            c.p99_ms
        );
    }

    // The scaling sweep serves the production operating point: the
    // structured-90 % bundle under the bounded N-best policy.
    let scale_bundle = tiled.with_policy(PolicyKind::LooseNBest(nbest), serving_beam);
    let sessions_axis: &[usize] = if smoke { &[8, 64] } else { &[8, 64, 256] };
    let shard_axis: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&s| s <= (2 * host_cores).max(2))
        .collect();
    let scale_utts = pipeline
        .corpus
        .sample_set(num_utts.max(64), &mut Rng::new(0x005E_5CA1));
    let scale_base = ServeConfig::default()
        .with_workers(1)
        .with_max_queue_frames(1 << 20)
        .with_max_batch_frames(1024)
        .with_degrade_fraction(1.0);
    let (scaling, knees) = run_scaling(
        &scale_bundle,
        scale_base,
        &scale_utts,
        sessions_axis,
        &shard_axis,
    );
    println!(
        "| {:>8} | {:>6} | {:>10} | {:>8} | {:>6} |",
        "sessions", "shards", "served/s", "p99-ms", "steals"
    );
    println!("|----------|--------|------------|----------|--------|");
    for p in &scaling {
        println!(
            "| {:>8} | {:>6} | {:>10.0} | {:>8.2} | {:>6} |",
            p.sessions, p.shards, p.served_fps, p.p99_ms, p.steals
        );
    }
    for k in &knees {
        println!(
            "knee @ {} sessions: {} shard(s) (row best {:.0} fps)",
            k.sessions, k.knee_shards, k.best_fps
        );
    }

    // The 2-vs-1-shard gate reruns its two points paired and interleaved
    // (rep i of both configs shares its noise environment), at 64 sessions
    // where per-shard batches stay large.
    let gate_bundle = &scale_bundle;
    let mut one_shard_fps = Vec::with_capacity(reps);
    let mut two_shard_fps = Vec::with_capacity(reps);
    for _ in 0..reps {
        for (shards, out) in [(1, &mut one_shard_fps), (2, &mut two_shard_fps)] {
            let cfg = scale_base
                .with_shards(shards)
                .with_max_sessions(64)
                .with_steal_threshold(32);
            let (fps, _, _, _) = run_closed_loop(gate_bundle, cfg, &scale_utts, 64);
            out.push(fps);
        }
    }

    let overload = run_overload(&pruned.with_policy(PolicyKind::Beam, serving_beam), &utts);
    println!(
        "overload: offered {} → admitted {}, degraded {}, rejected {}, drained {}",
        overload.offered, overload.admitted, overload.degraded, overload.rejected, overload.drained
    );
    let slo = run_slo_shed(&pruned.with_policy(PolicyKind::Beam, serving_beam), &utts);
    println!(
        "slo-shed: offered {} → admitted {}, degraded {}, slo-shed {}, other {}, drained {}",
        slo.offered, slo.admitted, slo.degraded, slo.slo_shed, slo.other_rejects, slo.drained
    );
    let steal = run_steal_drain(&scale_bundle, &utts);
    println!(
        "steal-drain: offered {} → drained {}, steals {}",
        steal.offered, steal.drained, steal.steals
    );

    // ISSUE 9 detector scenarios: the detector watches a 90 %-unstructured
    // *beam* bundle exported with `with_retrain(0)` — the raw prune-and-
    // ship artifact whose flattened posteriors let the un-bounded beam's
    // hypothesis set blow up (the paper's dark side, live; the retrained
    // measurement cells above deliberately recover that confidence, so
    // they are the wrong specimen). The dense bundle is the false-positive
    // control. The workload baseline is re-probed at the *serving* beam —
    // the bundles carry a baseline probed under the pipeline's offline
    // beam, and the threshold must compare like against like.
    let detector_baseline = pipeline
        .dense_hyps_baseline(&serving_beam)
        .expect("dense baseline probe");
    // Detection needs room to observe: a session shorter than the streak
    // window plus a few frames of onset can't meaningfully flag, so the
    // scenario draws utterances of at least 16 frames.
    let det_utts: Vec<Utterance> = {
        let mut det_rng = Rng::new(0x005E_DE7E);
        let mut picked: Vec<Utterance> = Vec::with_capacity(num_utts);
        while picked.len() < num_utts {
            picked.extend(
                pipeline
                    .corpus
                    .sample_set(num_utts, &mut det_rng)
                    .into_iter()
                    .filter(|u| u.frames.len() >= 16),
            );
        }
        picked.truncate(num_utts);
        picked
    };
    let mut det_bundle = pipeline
        .servable(
            ServableSpec::pruned(0.9)
                .with_retrain(0)
                .with_policy(PolicyKind::Beam)
                .with_beam(serving_beam),
        )
        .expect("unretrained prune to 90%");
    det_bundle.dense_hyps_baseline = detector_baseline;
    let det = run_detector(&det_bundle, &det_utts, concurrency);
    let mut dense_det_bundle = dense.with_policy(PolicyKind::Beam, serving_beam);
    dense_det_bundle.dense_hyps_baseline = detector_baseline;
    let dense_det = run_detector(&dense_det_bundle, &det_utts, concurrency);
    println!(
        "detector @ 90% beam: {}/{} sessions flagged ({} within {DETECT_FRAMES_BUDGET} frames; \
         frames-to-flag p50 {:.0} max {:.0}; margin p50 {:.2} p99 {:.2}; baseline {:.1} hyps)",
        det.flagged,
        det.sessions,
        det.flagged_within,
        det.frames_to_flag_p50,
        det.frames_to_flag_max,
        det.margin_p50,
        det.margin_p99,
        detector_baseline,
    );
    println!(
        "detector @ dense:    {}/{} sessions flagged (margin p50 {:.2} p99 {:.2})",
        dense_det.flagged, dense_det.sessions, dense_det.margin_p50, dense_det.margin_p99,
    );
    println!("elapsed: {:.1}s", start.elapsed().as_secs_f64());

    let find = |level: &str, policy: &str, structure: &str, precision: &str| {
        cells
            .iter()
            .find(|c| {
                c.level == level
                    && c.policy == policy
                    && c.structure == structure
                    && c.precision == precision
            })
            .unwrap_or_else(|| panic!("no ({level}, {policy}, {structure}, {precision}) cell"))
    };
    let f32_label = Precision::F32.label();
    let beam90 = find(&pruned.label, "beam", &pruned.structure, f32_label);
    let nbest90 = find(&pruned.label, "nbest", &pruned.structure, f32_label);

    // "Micro-batching beats sequential" is a property of the engine, not
    // of one policy: pool the paired (served, sequential) reps of every
    // 90%-sparsity cell and require a majority of wins. On a single-core
    // host the beam cell alone is near parity (its decode dominates and
    // parallel fan-out has no cores to use), while the bounded policies
    // show the scoring-amortization win clearly; multi-core hosts win
    // across the board.
    let pooled: Vec<f64> = cells
        .iter()
        .filter(|c| c.level == pruned.label)
        .flat_map(|c| c.speedup_reps.iter().copied())
        .collect();
    let speedup_wins = pooled.iter().filter(|s| **s > 1.0).count();
    let mut ok = check(
        "micro-batching beats sequential at 90%",
        2 * speedup_wins > pooled.len(),
        format!(
            "served wins {speedup_wins}/{} paired reps across policies (beam best {:.0} vs {:.0} seq, {:.2}x)",
            pooled.len(),
            beam90.served_fps,
            beam90.sequential_fps,
            beam90.speedup
        ),
    );
    // Paired sign test: each rep's nbest p99 against the same rep's beam
    // p99 (reps are interleaved, so a pair shares its noise environment).
    // A majority of paired wins is far more flake-resistant than comparing
    // two medians of what are, at smoke scale, extreme-value statistics.
    let paired_wins = nbest90
        .p99_reps
        .iter()
        .zip(&beam90.p99_reps)
        .filter(|(n, b)| n <= b)
        .count();
    ok &= check(
        "nbest served p99 <= beam served p99 at 90%",
        2 * paired_wins > reps,
        format!(
            "nbest wins {paired_wins}/{reps} paired reps (medians: nbest {:.2}ms vs beam {:.2}ms)",
            nbest90.p99_ms, beam90.p99_ms
        ),
    );
    // The ISSUE 6 gate: structured 90 % serving must beat dense serving in
    // *every* policy cell — the whole point of tile-aligned pruning. The
    // unstructured 90 % cells are reported but not gated (they are the dark
    // side this PR fixes the structured path out of). Same paired sign test
    // as the p99 gate: reps are interleaved across cells, so rep i of both
    // cells shares its noise environment and a majority of paired wins is
    // far more flake-resistant than comparing two best-of-reps throughputs
    // measured seconds apart.
    for policy in ["beam", "unfold", "nbest"] {
        let d = find(&dense.label, policy, &dense.structure, f32_label);
        let s = find(&tiled.label, policy, &tiled.structure, f32_label);
        let paired = s
            .served_fps_reps
            .iter()
            .zip(&d.served_fps_reps)
            .filter(|(sv, dv)| sv > dv)
            .count();
        ok &= check(
            &format!("structured 90% beats dense serving ({policy})"),
            2 * paired > reps,
            format!(
                "{} wins {paired}/{reps} paired reps (best: {:.0} fps vs dense {:.0} fps, {:.2}x)",
                tiled.structure,
                s.served_fps,
                d.served_fps,
                s.served_fps / d.served_fps
            ),
        );
    }
    // The ISSUE 10 gate: int8 quantized-BSR serving must at least match
    // the f32 BSR path it quantizes, policy by policy — the 4× weight-
    // bandwidth cut has to survive end-to-end serving (per-batch
    // activation quantization, dequantize, decode on quantized
    // posteriors), not just the kernel bench. Same paired sign test as
    // the gates above; ≥ rather than > because the two cells share every
    // decode parameter and perfect parity is a legitimate outcome on a
    // decode-dominated host.
    for policy in ["beam", "unfold", "nbest"] {
        let s = find(&tiled.label, policy, &tiled.structure, f32_label);
        let q = find(
            &qtiled.label,
            policy,
            &qtiled.structure,
            Precision::Int8.label(),
        );
        let paired = q
            .served_fps_reps
            .iter()
            .zip(&s.served_fps_reps)
            .filter(|(qv, sv)| qv >= sv)
            .count();
        ok &= check(
            &format!("quantized bsr 90% >= f32 bsr serving ({policy})"),
            2 * paired > reps,
            format!(
                "int8 wins {paired}/{reps} paired reps (best: {:.0} fps vs f32 {:.0} fps, {:.2}x)",
                q.served_fps,
                s.served_fps,
                q.served_fps / s.served_fps
            ),
        );
    }
    // The ISSUE 7 scaling gate. A single-core host cannot show a sharding
    // speedup (two shards time-slice one core), so the paired sign test is
    // enforced only with ≥ 2 cores; single-core instead checks that
    // sharding doesn't *collapse* throughput (> 0.5× paired), and the
    // artifact records host_cores so the downgraded check is visible.
    let shard_wins = two_shard_fps
        .iter()
        .zip(&one_shard_fps)
        .filter(|(two, one)| two > one)
        .count();
    let no_collapse = two_shard_fps
        .iter()
        .zip(&one_shard_fps)
        .filter(|(two, one)| **two > 0.5 * **one)
        .count();
    let best = |xs: &[f64]| xs.iter().copied().fold(0.0f64, f64::max);
    if host_cores >= 2 {
        ok &= check(
            "2 shards beat 1 shard at 64 sessions",
            2 * shard_wins > reps,
            format!(
                "2-shard wins {shard_wins}/{reps} paired reps (best: {:.0} vs {:.0} fps, {} cores)",
                best(&two_shard_fps),
                best(&one_shard_fps),
                host_cores
            ),
        );
    } else {
        ok &= check(
            "sharding doesn't collapse throughput on 1 core",
            2 * no_collapse > reps,
            format!(
                "2-shard holds >0.5x in {no_collapse}/{reps} paired reps \
                 (best: {:.0} vs {:.0} fps; speedup gate skipped on a single-core host)",
                best(&two_shard_fps),
                best(&one_shard_fps)
            ),
        );
    }
    ok &= check(
        "slo admission sheds under a slow scorer and drains",
        slo.slo_shed > 0
            && slo.drained as u64 == slo.admitted + slo.degraded
            && slo.other_rejects == 0,
        format!(
            "slo-shed {} of {} offers, drained {}/{}",
            slo.slo_shed,
            slo.offered,
            slo.drained,
            slo.admitted + slo.degraded
        ),
    );
    ok &= check(
        "overload sheds explicitly and drains",
        overload.rejected > 0 && overload.drained as u64 == overload.admitted + overload.degraded,
        format!(
            "rejected {}, drained {}/{}",
            overload.rejected,
            overload.drained,
            overload.admitted + overload.degraded
        ),
    );
    ok &= check(
        "drain with stealing terminates and rebalances",
        steal.drained == steal.offered && steal.steals > 0,
        format!(
            "drained {}/{} with {} steals",
            steal.drained, steal.offered, steal.steals
        ),
    );
    // The ISSUE 9 acceptance pair: the dark side is caught fast where it
    // exists, and never hallucinated where it doesn't.
    ok &= check(
        "detector flags >=90% of 90%-sparse beam sessions within 50 frames",
        10 * det.flagged_within >= 9 * det.sessions,
        format!(
            "flagged {}/{} within {DETECT_FRAMES_BUDGET} frames (p50 {:.0}, max {:.0} frames)",
            det.flagged_within, det.sessions, det.frames_to_flag_p50, det.frames_to_flag_max
        ),
    );
    ok &= check(
        "detector stays silent on the dense model",
        dense_det.flagged == 0,
        format!(
            "{} false positives of {} dense sessions",
            dense_det.flagged, dense_det.sessions
        ),
    );

    if let Some(path) = &json_path {
        // schema_version 5: ISSUE 10 — every cell carries a "precision"
        // field ("f32"/"int8") and the matrix adds the quantized-BSR 90 %
        // cells. Schema 4 (ISSUE 9) added the detector scenario and the
        // fleet telemetry snapshot; schema 3 (ISSUE 7) host_cores, the
        // sessions × shards scaling sweep + knees, and the slo_shed /
        // steal_drain scenarios; every schema-4 field is unchanged.
        let json = Json::obj(vec![
            ("schema_version", 5u64.into()),
            ("name", Json::str("serve_load")),
            ("smoke", smoke.into()),
            ("host_cores", host_cores.into()),
            ("utterances", utts.len().into()),
            ("total_frames", total_frames.into()),
            ("concurrency", cfg.max_sessions.into()),
            ("workers", cfg.workers.into()),
            ("max_batch_frames", cfg.max_batch_frames.into()),
            ("cells", Json::Arr(cells.iter().map(cell_json).collect())),
            (
                "scaling",
                Json::Arr(
                    scaling
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("sessions", p.sessions.into()),
                                ("shards", p.shards.into()),
                                ("served_fps", p.served_fps.into()),
                                ("latency_p99_ms", p.p99_ms.into()),
                                ("steals", p.steals.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "knees",
                Json::Arr(
                    knees
                        .iter()
                        .map(|k| {
                            Json::obj(vec![
                                ("sessions", k.sessions.into()),
                                ("knee_shards", k.knee_shards.into()),
                                ("best_fps", k.best_fps.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shard_gate",
                Json::obj(vec![
                    (
                        "one_shard_fps_reps",
                        Json::Arr(one_shard_fps.iter().map(|&v| v.into()).collect()),
                    ),
                    (
                        "two_shard_fps_reps",
                        Json::Arr(two_shard_fps.iter().map(|&v| v.into()).collect()),
                    ),
                    ("enforced", (host_cores >= 2).into()),
                ]),
            ),
            (
                "slo_shed",
                Json::obj(vec![
                    ("offered", slo.offered.into()),
                    ("admitted", slo.admitted.into()),
                    ("degraded", slo.degraded.into()),
                    ("slo_shed", slo.slo_shed.into()),
                    ("other_rejects", slo.other_rejects.into()),
                    ("drained", slo.drained.into()),
                ]),
            ),
            (
                "steal_drain",
                Json::obj(vec![
                    ("offered", steal.offered.into()),
                    ("drained", steal.drained.into()),
                    ("steals", steal.steals.into()),
                ]),
            ),
            (
                "overload",
                Json::obj(vec![
                    ("offered", overload.offered.into()),
                    ("admitted", overload.admitted.into()),
                    ("degraded", overload.degraded.into()),
                    ("rejected", overload.rejected.into()),
                    ("drained", overload.drained.into()),
                ]),
            ),
            (
                "detector",
                Json::obj(vec![
                    ("dense_hyps_baseline", detector_baseline.into()),
                    ("detect_frames_budget", (DETECT_FRAMES_BUDGET as u64).into()),
                    ("sessions", det.sessions.into()),
                    ("flagged", det.flagged.into()),
                    ("flagged_within_budget", det.flagged_within.into()),
                    ("frames_to_flag_p50", det.frames_to_flag_p50.into()),
                    ("frames_to_flag_max", det.frames_to_flag_max.into()),
                    ("margin_p50", det.margin_p50.into()),
                    ("margin_p99", det.margin_p99.into()),
                    ("dense_sessions", dense_det.sessions.into()),
                    ("dense_false_positives", dense_det.flagged.into()),
                    ("dense_margin_p50", dense_det.margin_p50.into()),
                    ("dense_margin_p99", dense_det.margin_p99.into()),
                ]),
            ),
            ("telemetry", det.telemetry),
            ("gates_passed", ok.into()),
        ]);
        write_json_file(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("recorded {path}");
    }
    std::process::exit(if ok { 0 } else { 1 });
}
