//! Graph-scale study (ISSUE 8): decode at 10k-word vocabulary without
//! materializing the decoding graph.
//!
//! Eager H∘(L∘G) composition stores every arc up front; the lazy
//! [`darkside_core::wfst::LazyComposeFst`] keeps only a state table and
//! expands arcs on demand behind a bounded LRU memo. This binary measures
//! that trade across lexicon sizes × memo budgets — graph states/arcs,
//! peak resident (memoized) states, decode latency percentiles, WER — and
//! gates the claims that matter:
//!
//! * lazy decodes are **bit-for-bit** identical to eager ones, including
//!   with a memo small enough to evict mid-utterance;
//! * at 10k words the decode's peak resident states stay under 25 % of
//!   the eager graph's state count (the memory story);
//! * WER through the lazy graph equals the eager graph's exactly;
//! * the Fig. 7 shape survives the scale-up: when acoustic confidence
//!   collapses, the loose N-best table still clamps hypothesis growth
//!   below the beam's, now on a 10k-word graph.
//!
//! No model is trained at this scale (a 10k-word acoustic run is a
//! training job, not a bench): decodes run against *oracle* cost
//! matrices derived from each utterance's true frame labels — a sharp
//! oracle for the WER/memory rows, and a deliberately flattened one to
//! reproduce the pruning-induced confidence collapse for the growth
//! comparison. Everything is seeded and deterministic.
//!
//! `--smoke` builds the 200-word equivalence case plus the 10k-word
//! resident-fraction and growth gates (no eager build at 10k). `--json
//! <path>` writes the full measurement table for EXPERIMENTS.md.

use darkside_bench::report::{check, json_arg, write_json_file};
use darkside_core::acoustic::{Corpus, CorpusConfig, Utterance};
use darkside_core::decoder::{decode_with_policy, word_errors, BeamConfig, DecodeResult, WerStats};
use darkside_core::nn::{Matrix, Rng};
use darkside_core::trace::Json;
use darkside_core::viterbi_accel::NBestTableConfig;
use darkside_core::wfst::{
    build_decoding_graph, build_lazy_decoding_graph, prune_grammar, GraphSource, MemoStats,
};
use darkside_core::PolicyKind;
use std::time::Instant;

const SEED: u64 = 0x5CA1_E000;
const BUDGETS: [usize; 3] = [1024, 8192, 65536];
const GRAMMAR_THRESHOLDS: [f64; 4] = [0.0, 5e-5, 1e-4, 2e-4];
/// The smoke gate: a 10k-word decode may keep at most this fraction of
/// the eager graph's states resident in the memo.
const RESIDENT_FRACTION_LIMIT: f64 = 0.25;

fn corpus_at(num_words: usize) -> Corpus {
    let config = CorpusConfig::large_vocab(num_words).with_seed(SEED ^ num_words as u64);
    Corpus::generate(config).expect("corpus generation")
}

/// Oracle acoustic costs from the true frame labels. `sharp` is a
/// confident model (the trained-dense regime); `!sharp` flattens the
/// margin the way heavy pruning flattens posteriors (DESIGN.md §2, the
/// Fig. 4 mechanism), so beam survivors multiply.
fn oracle_costs(utt: &Utterance, num_classes: usize, sharp: bool) -> Matrix {
    let (hit, miss) = if sharp { (0.25, 6.0) } else { (1.0, 1.8) };
    Matrix::from_fn(utt.labels.len(), num_classes, |t, c| {
        if c as u32 == utt.labels[t] {
            hit
        } else {
            miss
        }
    })
}

struct DecodeRun {
    results: Vec<Result<DecodeResult, darkside_core::decoder::Error>>,
    wer: WerStats,
    times_ms: Vec<f64>,
    mean_hypotheses: f64,
}

/// Decode every utterance against `graph` under a fresh policy each time
/// (matching the pipeline's per-utterance policy lifecycle).
fn decode_all<G: GraphSource>(
    graph: &G,
    utts: &[Utterance],
    num_classes: usize,
    beam: &BeamConfig,
    kind: PolicyKind,
    sharp: bool,
) -> DecodeRun {
    let mut results = Vec::with_capacity(utts.len());
    let mut wer = WerStats::default();
    let mut times_ms = Vec::with_capacity(utts.len());
    let mut hyps_sum = 0.0;
    for utt in utts {
        let costs = oracle_costs(utt, num_classes, sharp);
        let mut policy = kind.build(beam).expect("policy build");
        let start = Instant::now();
        let result = decode_with_policy(graph, &costs, policy.as_mut());
        times_ms.push(start.elapsed().as_secs_f64() * 1e3);
        match &result {
            Ok(r) => {
                wer.accumulate(&word_errors(&utt.words, &r.words));
                hyps_sum += r.stats.mean_hypotheses();
            }
            // A dead search decodes to nothing: every reference word is a
            // deletion, not a skipped utterance.
            Err(_) => wer.accumulate(&word_errors(&utt.words, &[])),
        }
        results.push(result);
    }
    DecodeRun {
        wer,
        times_ms,
        mean_hypotheses: hyps_sum / utts.len().max(1) as f64,
        results,
    }
}

fn percentile(times_ms: &[f64], q: f64) -> f64 {
    if times_ms.is_empty() {
        return 0.0;
    }
    let mut sorted = times_ms.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// Decode-for-decode bitwise equality (words, cost bits, per-frame
/// effort) — the bench-side restatement of the core equivalence property.
fn bit_identical(a: &DecodeRun, b: &DecodeRun) -> bool {
    a.results.len() == b.results.len()
        && a.results.iter().zip(&b.results).all(|(x, y)| match (x, y) {
            (Ok(x), Ok(y)) => {
                x.words == y.words
                    && x.cost.to_bits() == y.cost.to_bits()
                    && x.stats.arcs_expanded == y.stats.arcs_expanded
                    && x.stats.active_tokens == y.stats.active_tokens
            }
            (Err(_), Err(_)) => true,
            _ => false,
        })
}

fn memo_json(stats: &MemoStats) -> Json {
    Json::obj(vec![
        ("hits", stats.hits.into()),
        ("misses", stats.misses.into()),
        ("evictions", stats.evictions.into()),
        ("resident", stats.resident.into()),
        ("peak_resident", stats.peak_resident.into()),
        ("capacity", stats.capacity.into()),
    ])
}

fn run_json(run: &DecodeRun) -> Vec<(&'static str, Json)> {
    vec![
        ("wer_percent", run.wer.percent().into()),
        ("decode_ms_p50", percentile(&run.times_ms, 0.50).into()),
        ("decode_ms_p99", percentile(&run.times_ms, 0.99).into()),
        ("mean_hypotheses", run.mean_hypotheses.into()),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = json_arg().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let start = Instant::now();
    let beam = BeamConfig::default();
    let nbest = PolicyKind::LooseNBest(NBestTableConfig {
        entries: 64,
        ways: 8,
    });
    let mut ok = true;
    let mut size_rows: Vec<Json> = Vec::new();

    // ── Equivalence at 200 words: eager vs lazy, with a memo so small it
    // must evict and re-expand mid-utterance.
    {
        let corpus = corpus_at(200);
        let num_classes = corpus.config.inventory.num_classes();
        let utts = corpus.sample_set(if smoke { 6 } else { 20 }, &mut Rng::new(SEED ^ 1));
        let eager =
            build_decoding_graph(&corpus.config.inventory, &corpus.lexicon, &corpus.grammar)
                .expect("eager graph");
        let lazy = build_lazy_decoding_graph(
            &corpus.config.inventory,
            &corpus.lexicon,
            &corpus.grammar,
            32,
        )
        .expect("lazy graph");
        let via_eager = decode_all(&eager, &utts, num_classes, &beam, PolicyKind::Beam, true);
        let via_lazy = decode_all(&lazy, &utts, num_classes, &beam, PolicyKind::Beam, true);
        let memo = lazy.memo_stats().expect("lazy memo stats");
        println!(
            "200 words: graph {} states / {} arcs, memo 32 → evictions {}, \
             eager p99 {:.2}ms, lazy p99 {:.2}ms, WER {:.2}%",
            eager.num_states(),
            eager.num_arcs(),
            memo.evictions,
            percentile(&via_eager.times_ms, 0.99),
            percentile(&via_lazy.times_ms, 0.99),
            via_eager.wer.percent(),
        );
        ok &= check(
            "lazy decode == eager decode at 200 words",
            bit_identical(&via_lazy, &via_eager),
            format!("{} utterances, beam policy", utts.len()),
        );
        ok &= check(
            "cramped memo evicted mid-utterance",
            memo.evictions > 0,
            format!("{} evictions at capacity 32", memo.evictions),
        );
        ok &= check(
            "lazy WER == eager WER at 200 words",
            via_lazy.wer.percent() == via_eager.wer.percent(),
            format!(
                "lazy {:.2}% vs eager {:.2}%",
                via_lazy.wer.percent(),
                via_eager.wer.percent()
            ),
        );
        size_rows.push(Json::obj(vec![
            ("num_words", 200u64.into()),
            ("graph_states", eager.num_states().into()),
            ("graph_arcs", eager.num_arcs().into()),
            ("eager", Json::obj(run_json(&via_eager))),
            (
                "lazy",
                Json::Arr(vec![Json::obj(
                    [
                        vec![("memo_states", 32u64.into())],
                        run_json(&via_lazy),
                        vec![("memo", memo_json(&memo))],
                    ]
                    .concat(),
                )]),
            ),
        ]));
    }

    // ── The budget sweep (full mode): eager baseline + lazy at each memo
    // budget, per lexicon size.
    if !smoke {
        for num_words in [2_000usize, 10_000] {
            let corpus = corpus_at(num_words);
            let num_classes = corpus.config.inventory.num_classes();
            let utts = corpus.sample_set(20, &mut Rng::new(SEED ^ num_words as u64));
            let eager =
                build_decoding_graph(&corpus.config.inventory, &corpus.lexicon, &corpus.grammar)
                    .expect("eager graph");
            let via_eager = decode_all(&eager, &utts, num_classes, &beam, PolicyKind::Beam, true);
            println!(
                "{num_words} words: graph {} states / {} arcs, eager p99 {:.2}ms, WER {:.2}%",
                eager.num_states(),
                eager.num_arcs(),
                percentile(&via_eager.times_ms, 0.99),
                via_eager.wer.percent(),
            );
            let mut lazy_rows = Vec::new();
            for budget in BUDGETS {
                let lazy = build_lazy_decoding_graph(
                    &corpus.config.inventory,
                    &corpus.lexicon,
                    &corpus.grammar,
                    budget,
                )
                .expect("lazy graph");
                let via_lazy = decode_all(&lazy, &utts, num_classes, &beam, PolicyKind::Beam, true);
                let memo = lazy.memo_stats().expect("lazy memo stats");
                let fraction = memo.peak_resident as f64 / eager.num_states() as f64;
                println!(
                    "  memo {budget}: peak resident {} ({:.1}% of eager), evictions {}, \
                     p99 {:.2}ms",
                    memo.peak_resident,
                    fraction * 100.0,
                    memo.evictions,
                    percentile(&via_lazy.times_ms, 0.99),
                );
                ok &= check(
                    &format!("lazy == eager at {num_words} words, memo {budget}"),
                    bit_identical(&via_lazy, &via_eager),
                    format!("WER {:.2}%", via_lazy.wer.percent()),
                );
                // Budgets at or above the limit measure the unbounded
                // working-set union instead of the capped residency; the
                // gate only applies where the cap is the binding claim.
                if num_words == 10_000
                    && (budget as f64) < RESIDENT_FRACTION_LIMIT * eager.num_states() as f64
                {
                    ok &= check(
                        &format!("peak resident < 25% of eager states (memo {budget})"),
                        fraction < RESIDENT_FRACTION_LIMIT,
                        format!("{:.1}%", fraction * 100.0),
                    );
                }
                lazy_rows.push(Json::obj(
                    [
                        vec![
                            ("memo_states", budget.into()),
                            ("resident_fraction", fraction.into()),
                        ],
                        run_json(&via_lazy),
                        vec![("memo", memo_json(&memo))],
                    ]
                    .concat(),
                ));
            }
            size_rows.push(Json::obj(vec![
                ("num_words", num_words.into()),
                ("graph_states", eager.num_states().into()),
                ("graph_arcs", eager.num_arcs().into()),
                ("eager", Json::obj(run_json(&via_eager))),
                ("lazy", Json::Arr(lazy_rows)),
            ]));
        }
    }

    // ── 10k words: resident-states gate and the Fig. 7-shape growth
    // comparison. Smoke never materializes the eager graph here — the lazy
    // state table *is* the eager trimmed state space, so its `num_states`
    // is the denominator the gate needs.
    let growth_json = {
        let corpus = corpus_at(10_000);
        let num_classes = corpus.config.inventory.num_classes();
        let utts = corpus.sample_set(if smoke { 4 } else { 12 }, &mut Rng::new(SEED ^ 2));
        // The state table is cheap to build and its size *is* the eager
        // trimmed state count, so probe it first, then serve the measured
        // decode under a memo capped at ⅛ of the graph — the bounded LRU
        // is the mechanism that keeps residency under the 25 % gate no
        // matter how many sessions' working sets accumulate.
        let total_states = build_lazy_decoding_graph(
            &corpus.config.inventory,
            &corpus.lexicon,
            &corpus.grammar,
            usize::MAX,
        )
        .expect("lazy graph")
        .num_states();
        let budget = (total_states / 8).max(1);
        let lazy = build_lazy_decoding_graph(
            &corpus.config.inventory,
            &corpus.lexicon,
            &corpus.grammar,
            budget,
        )
        .expect("lazy graph");
        let sharp_beam = decode_all(&lazy, &utts, num_classes, &beam, PolicyKind::Beam, true);
        let memo = lazy.memo_stats().expect("lazy memo stats");
        let fraction = memo.peak_resident as f64 / total_states as f64;
        println!(
            "10k words: graph {} states / {} arcs (never materialized), memo budget {budget}, \
             peak resident {} ({:.1}%), lazy p99 {:.2}ms, WER {:.2}%",
            total_states,
            lazy.num_arcs(),
            memo.peak_resident,
            fraction * 100.0,
            percentile(&sharp_beam.times_ms, 0.99),
            sharp_beam.wer.percent(),
        );
        ok &= check(
            "10k-word decode keeps < 25% of eager states resident",
            fraction < RESIDENT_FRACTION_LIMIT,
            format!(
                "peak {} of {} states = {:.1}%",
                memo.peak_resident,
                total_states,
                fraction * 100.0
            ),
        );
        // Confidence collapse at 10k words: flattened oracle vs sharp, beam
        // vs loose N-best — the N-best table must still clamp the growth.
        let flat_beam = decode_all(&lazy, &utts, num_classes, &beam, PolicyKind::Beam, false);
        let sharp_nbest = decode_all(&lazy, &utts, num_classes, &beam, nbest, true);
        let flat_nbest = decode_all(&lazy, &utts, num_classes, &beam, nbest, false);
        let beam_growth = flat_beam.mean_hypotheses / sharp_beam.mean_hypotheses;
        let nbest_growth = flat_nbest.mean_hypotheses / sharp_nbest.mean_hypotheses;
        ok &= check(
            "nbest clamps growth below beam at 10k words",
            nbest_growth < beam_growth,
            format!("nbest {nbest_growth:.2}× vs beam {beam_growth:.2}×"),
        );
        Json::obj(vec![
            ("num_words", 10_000u64.into()),
            ("graph_states", total_states.into()),
            ("peak_resident", memo.peak_resident.into()),
            ("resident_fraction", fraction.into()),
            ("beam_sharp_hyps", sharp_beam.mean_hypotheses.into()),
            ("beam_flat_hyps", flat_beam.mean_hypotheses.into()),
            ("nbest_sharp_hyps", sharp_nbest.mean_hypotheses.into()),
            ("nbest_flat_hyps", flat_nbest.mean_hypotheses.into()),
            ("beam_growth", beam_growth.into()),
            ("nbest_growth", nbest_growth.into()),
        ])
    };

    // ── Grammar pruning (full mode): entropy-prune the 2k-word bigram at
    // rising thresholds, decode through the pruned graph — the measured
    // size / perplexity / WER trade-off.
    let mut grammar_rows: Vec<Json> = Vec::new();
    if !smoke {
        let corpus = corpus_at(2_000);
        let num_classes = corpus.config.inventory.num_classes();
        // Utterances sampled from the TRUE grammar: pruning only ever makes
        // the decode's grammar a worse model of them.
        let utts = corpus.sample_set(20, &mut Rng::new(SEED ^ 3));
        let mut last_arcs = usize::MAX;
        for threshold in GRAMMAR_THRESHOLDS {
            let (pruned, report) =
                prune_grammar(&corpus.grammar, threshold).expect("grammar prune");
            let lazy = build_lazy_decoding_graph(
                &corpus.config.inventory,
                &corpus.lexicon,
                &pruned,
                usize::MAX,
            )
            .expect("lazy graph over pruned grammar");
            let run = decode_all(&lazy, &utts, num_classes, &beam, PolicyKind::Beam, true);
            println!(
                "grammar prune {threshold:.0e}: arcs {} → {}, ppl {:.1} → {:.1}, \
                 graph {} states, WER {:.2}%",
                report.arcs_before,
                report.arcs_after,
                report.ppl_before,
                report.ppl_after,
                lazy.num_states(),
                run.wer.percent(),
            );
            ok &= check(
                &format!("grammar prune {threshold:.0e} shrinks monotonically"),
                report.arcs_after <= last_arcs && report.ppl_after >= report.ppl_before,
                format!(
                    "{} arcs, ppl {:.1} (≥ {:.1})",
                    report.arcs_after, report.ppl_after, report.ppl_before
                ),
            );
            last_arcs = report.arcs_after;
            grammar_rows.push(Json::obj(
                [
                    vec![
                        ("threshold", threshold.into()),
                        ("grammar_arcs", report.arcs_after.into()),
                        ("ppl", report.ppl_after.into()),
                        ("graph_states", lazy.num_states().into()),
                        ("graph_arcs", lazy.num_arcs().into()),
                    ],
                    run_json(&run),
                ]
                .concat(),
            ));
        }
    }

    println!("elapsed: {:.1}s", start.elapsed().as_secs_f64());
    if let Some(path) = &json_path {
        let doc = Json::obj(vec![
            ("schema_version", 1u64.into()),
            ("name", Json::str("exp_scale")),
            ("smoke", smoke.into()),
            ("sizes", Json::Arr(size_rows)),
            ("growth_10k", growth_json),
            ("grammar_prune_2k", Json::Arr(grammar_rows)),
        ]);
        write_json_file(path, &doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("recorded {path}");
    }
    std::process::exit(if ok { 0 } else { 1 });
}
