//! Records the traced end-to-end pipeline baseline into
//! `BENCH_pipeline.json` (ISSUE 4 satellite; schema in EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p darkside-bench --bin pipeline_baseline`
//! (optionally `-- --out <path>`; default `BENCH_pipeline.json` in the
//! working directory).
//!
//! Runs `Pipeline::run_traced` on the CI smoke configuration (plus one
//! retrain epoch, so every stage span exists) under a `MemoryRecorder`,
//! then writes the derived per-stage wall-times and per-level decode
//! latency percentiles alongside the full `RunReport` — so later PRs can
//! diff both the headline numbers and the raw metric set.

use darkside_bench::report::write_json_file;
use darkside_core::trace::{Json, MemoryRecorder};
use darkside_core::{Pipeline, PipelineConfig};
use std::rc::Rc;

fn main() {
    let out_path = match parse_out_arg() {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out_path, "") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }

    let config = PipelineConfig::smoke().with_training(20, 1);
    let recorder = Rc::new(MemoryRecorder::new());
    let (_pipeline, report, run) =
        Pipeline::run_traced(config, "pipeline_baseline", recorder).expect("traced pipeline run");

    // --- per-stage wall-times --------------------------------------------
    let stages = ["corpus", "graph", "train", "prune", "retrain"];
    let mut stage_fields: Vec<(String, Json)> = Vec::new();
    println!("pipeline_baseline: per-stage wall-times");
    for stage in stages {
        let ms = run.stage_ms(stage).unwrap_or(0.0);
        println!("  {stage:<8} {ms:>9.2} ms");
        stage_fields.push((stage.to_string(), ms.into()));
    }
    for level in &report.levels {
        let span = format!("decode.{}", level.label);
        let ms = run.stage_ms(&span).unwrap_or(0.0);
        println!("  {span:<12} {ms:>5.2} ms");
        stage_fields.push((span, ms.into()));
    }

    // --- per-level decode latency percentiles ----------------------------
    let mut decode_fields: Vec<(String, Json)> = Vec::new();
    println!("decode per-frame latency (ns):");
    for level in &report.levels {
        println!(
            "  {:<6} p50 {:>8.0}  p95 {:>8.0}  p99 {:>8.0}  (hyps/frame p95 {:.0})",
            level.label, level.frame_ns_p50, level.frame_ns_p95, level.frame_ns_p99, level.hyps_p95
        );
        decode_fields.push((
            level.label.clone(),
            Json::obj(vec![
                ("frame_ns_p50", level.frame_ns_p50.into()),
                ("frame_ns_p95", level.frame_ns_p95.into()),
                ("frame_ns_p99", level.frame_ns_p99.into()),
                ("hyps_p50", level.hyps_p50.into()),
                ("hyps_p95", level.hyps_p95.into()),
                ("hyps_p99", level.hyps_p99.into()),
            ]),
        ));
    }

    let json = Json::obj(vec![
        ("schema_version", 1u64.into()),
        ("generated_by", Json::str("pipeline_baseline")),
        (
            "host",
            Json::obj(vec![
                (
                    "hw_threads",
                    std::thread::available_parallelism()
                        .map_or(1, |p| p.get())
                        .into(),
                ),
                ("arch", Json::str(std::env::consts::ARCH)),
            ]),
        ),
        ("stage_ms", Json::Obj(stage_fields)),
        ("decode_latency", Json::Obj(decode_fields)),
        ("run_report", run.to_json()),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("recorded {out_path}");
}

fn parse_out_arg() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => Ok("BENCH_pipeline.json".to_string()),
        [flag, path] if flag == "--out" => Ok(path.clone()),
        [flag] if flag == "--out" => Err("--out requires a path".to_string()),
        other => Err(format!(
            "unknown arguments {other:?}; usage: pipeline_baseline [--out <path>]"
        )),
    }
}
