//! Fig. 7 reproduction: the loose N-best table bounds the pruning-induced
//! workload explosion that inflates a pure beam search (ISSUE 3).
//!
//! Runs the pipeline's per-level × per-policy grid — Beam (the paper's
//! "Baseline" search), UNFOLD's hash + backup-buffer storage, and the
//! paper's K-way set-associative loose N-best table — over the same
//! scorers, so the columns differ only in hypothesis admission. Checked
//! shape targets (full run):
//!
//! * Beam hypotheses/frame at 90 % sparsity exceed 3× its dense count
//!   (the Fig. 4 explosion, re-measured per policy);
//! * N-best hypotheses/frame at 90 % stay under 1.5× its dense count
//!   (the table's capacity clamps survivors, so the explosion cannot
//!   propagate);
//! * UNFOLD tracks Beam exactly (it stores everything; the cost shows up
//!   as overflow traffic, not pruning).
//!
//! `--smoke` runs the CI-sized pipeline and checks the ordering only
//! (N-best growth < Beam growth), in seconds.
//!
//! `--structured` (ISSUE 6) re-runs every pruned level with register-tile
//! 8×8 structured pruning alongside the unstructured row, so the grid
//! reads off the structured-vs-unstructured WER gap at equal sparsity per
//! policy, and gates that the structured 90 % WER stays within +0.5 %
//! absolute of unstructured 90 % — the accuracy price of tiling must not
//! eat the serving win `serve_load` measures.
//!
//! `--quantized` (ISSUE 10) adds int8-scored ride-along rows (dense and
//! every level, on the configured structure) at the *same* masked
//! weights, and gates that the quantized 90 % WER stays within +0.5 %
//! absolute of f32 per policy — the int8 bandwidth win must not cost
//! accuracy either. Composes with `--structured` for the serving
//! deployment's exact recipe (tile-pruned, int8-BSR-served).

use darkside_bench::report::{
    check, json_arg, policy_grid_json, print_policy_grid, print_policy_latency, write_json_file,
};
use darkside_core::trace::{self, MemoryRecorder};
use darkside_core::viterbi_accel::{NBestTableConfig, UnfoldHashConfig};
use darkside_core::wfst::GraphSource;
use darkside_core::{
    Pipeline, PipelineConfig, PolicyGridReport, PolicyKind, Precision, PruneStructure,
};
use std::rc::Rc;

/// The (level, structure, precision, policy) cell, panicking on absent
/// cells so a renamed label fails loudly instead of gating on the wrong
/// row. Precision joined the key in ISSUE 10: quantized rows share their
/// (level, structure) with the f32 rows they ablate.
fn cell<'r>(
    report: &'r PolicyGridReport,
    level: &str,
    structure: &str,
    precision: &str,
    policy: &str,
) -> &'r darkside_core::LevelReport {
    report
        .levels
        .iter()
        .find(|l| l.label == level && l.structure == structure && l.precision == precision)
        .and_then(|l| l.per_policy.iter().find(|c| c.policy == policy))
        .unwrap_or_else(|| {
            panic!("no ({level}, {structure}, {precision}, {policy}) cell in the grid")
        })
}

/// Hypotheses/frame for one unstructured f32 (level, policy) cell.
fn hyps(report: &PolicyGridReport, level: &str, policy: &str) -> f64 {
    cell(report, level, "unstructured", "f32", policy).mean_hypotheses
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let structured = std::env::args().any(|a| a == "--structured");
    let quantized = std::env::args().any(|a| a == "--quantized");
    let json_path = json_arg().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let start = std::time::Instant::now();

    let (config, nbest) = if smoke {
        // CI scale: a small table that still binds on the smoke graph.
        (
            PipelineConfig::smoke(),
            NBestTableConfig {
                entries: 64,
                ways: 8,
            },
        )
    } else {
        // 32 × 8 rather than the Table III scaled 256: the table must
        // already bind on the *dense* workload (256 entries leave mean
        // occupancy at ~97 — all slack, so pruning-induced growth passes
        // straight through at 2.7×; 64 entries still grow 1.6×). The
        // paper's Fig. 7 sweep picks N the same way — small enough to
        // clamp, large enough to keep WER at baseline (2.1 % vs 1.8 %
        // dense here).
        (
            PipelineConfig::default_scaled(),
            NBestTableConfig {
                entries: 32,
                ways: 8,
            },
        )
    };
    // The structured study runs the serving deployment's recipe: block
    // pruning removes whole 8×8 tiles, so the masked-retraining budget
    // that recovers element pruning in 3 epochs leaves a tile-pruned 90 %
    // model confidence-collapsed (8×+ WER). Longer retraining applies to
    // *both* structures — the WER gap is read at equal sparsity and equal
    // training, the only difference being the pruning granularity. The
    // N-best table is re-sized to 64×8 by the paper's own Fig. 7
    // procedure (pick N so table WER stays at the unbounded policies'
    // baseline): tile pruning leaves flatter posteriors even after
    // retraining, and a 32-entry table clamps the true path away (6.4 %
    // WER) where 64 entries keep it.
    let (config, nbest) = if structured {
        (
            config
                .with_structure(PruneStructure::tile())
                .with_training(14, 24),
            NBestTableConfig {
                entries: 64,
                ways: 8,
            },
        )
    } else {
        (config, nbest)
    };
    // `--quantized` (ISSUE 10) rides along either mode: every level (and
    // dense) gains an int8-scored row at the *same* masked weights on the
    // configured structure, so the grid reads the quantization WER cost at
    // equal sparsity per policy — and gates it.
    let config = if quantized {
        config.with_precision(Precision::Int8)
    } else {
        config
    };
    let policies = [
        PolicyKind::Beam,
        PolicyKind::UnfoldHash(UnfoldHashConfig::scaled()),
        PolicyKind::LooseNBest(nbest),
    ];

    let pipeline = Pipeline::build(config).expect("pipeline build");
    // The grid runs under a MemoryRecorder so every cell carries per-frame
    // latency percentiles (ISSUE 4); trace_neutrality.rs pins that the
    // recorder cannot change the decode itself.
    let report = trace::with_recorder(Rc::new(MemoryRecorder::new()), || {
        pipeline.run_policy_grid(&policies)
    })
    .expect("policy grid");
    println!(
        "exp_fig7{}{}: graph {} states / {} arcs, nbest table {} entries × {} ways",
        if smoke { " (smoke)" } else { "" },
        if quantized { " (quantized)" } else { "" },
        pipeline.graph.num_states(),
        pipeline.graph.num_arcs(),
        nbest.entries,
        nbest.ways,
    );
    print_policy_grid(&report);
    println!();
    print_policy_latency(&report);
    println!("elapsed: {:.1}s", start.elapsed().as_secs_f64());
    if let Some(path) = &json_path {
        write_json_file(path, &policy_grid_json("exp_fig7", &report))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("recorded {path}");
    }

    let beam_growth = hyps(&report, "90%", "beam") / hyps(&report, "dense", "beam");
    let nbest_growth = hyps(&report, "90%", "nbest") / hyps(&report, "dense", "nbest");
    let unfold_growth = hyps(&report, "90%", "unfold") / hyps(&report, "dense", "unfold");

    let mut ok = check(
        "nbest grows less than beam",
        nbest_growth < beam_growth,
        format!("nbest {nbest_growth:.2}× vs beam {beam_growth:.2}×"),
    );
    ok &= check(
        "unfold tracks beam",
        (unfold_growth - beam_growth).abs() < 1e-9,
        format!("unfold {unfold_growth:.2}× vs beam {beam_growth:.2}×"),
    );
    // The absolute explosion magnitudes are shape targets of the *default*
    // training recipe (3 retrain epochs — the paper's confidence collapse
    // at its starkest). The structured study retrains much longer, which
    // partially restores confidence and softens the explosion; its
    // ordering checks above and the WER-gap gate below still apply.
    if !smoke && !structured {
        ok &= check(
            "beam explodes at 90%",
            beam_growth > 3.0,
            format!("{beam_growth:.2}× (target > 3×)"),
        );
        ok &= check(
            "nbest bounds the explosion",
            nbest_growth < 1.5,
            format!("{nbest_growth:.2}× (target < 1.5×)"),
        );
    }
    // Smoke's retrain-free toy model decodes at ~100% WER by design (the
    // smoke checks are ordering-only), so the accuracy gate is full-only.
    if structured && !smoke {
        let tag = PruneStructure::tile().label();
        for policy in report.policies.clone() {
            let u = cell(&report, "90%", "unstructured", "f32", &policy).wer_percent;
            let s = cell(&report, "90%", &tag, "f32", &policy).wer_percent;
            ok &= check(
                &format!("structured 90% WER within +0.5% of unstructured ({policy})"),
                s <= u + 0.5,
                format!("{tag} {s:.2}% vs unstructured {u:.2}%"),
            );
        }
    }
    // ISSUE 10: the quantized ride-along rows score the *same* masked
    // weights through the int8 store, so any WER delta is pure
    // quantization error. Smoke's toy model decodes at ~100% WER by
    // design, so smoke only gates row presence; the full run holds the
    // quantized WER to +0.5% absolute of f32 at 90% for every policy.
    if quantized {
        let tag = if structured {
            PruneStructure::tile().label()
        } else {
            "unstructured".to_string()
        };
        for policy in report.policies.clone() {
            let q = cell(&report, "90%", &tag, "int8", &policy);
            let d = cell(&report, "dense", "unstructured", "int8", &policy);
            ok &= check(
                &format!("quantized rows present at dense and 90% ({policy})"),
                q.mean_hypotheses > 0.0 && d.mean_hypotheses > 0.0,
                format!(
                    "int8 90% {:.1} hyps/frame, int8 dense {:.1}",
                    q.mean_hypotheses, d.mean_hypotheses
                ),
            );
        }
        if !smoke {
            for policy in report.policies.clone() {
                let f = cell(&report, "90%", &tag, "f32", &policy).wer_percent;
                let q = cell(&report, "90%", &tag, "int8", &policy).wer_percent;
                ok &= check(
                    &format!("quantized 90% WER within +0.5% of f32 ({policy})"),
                    q <= f + 0.5,
                    format!("int8 {q:.2}% vs f32 {f:.2}% on {tag}"),
                );
            }
        }
    }
    std::process::exit(if ok { 0 } else { 1 });
}
