//! Fig. 4 reproduction: the decoding workload explosion that confidence
//! collapse causes (the paper's "dark side", DESIGN.md §4).
//!
//! Same scaled pipeline run as `exp_fig3`, but the checked targets are the
//! search-effort axis: hypotheses explored per frame at 90 % sparsity at
//! least 1.5× the dense count, while the retrained pruned model's WER stays
//! within 1 point of dense — accuracy is preserved, *work* explodes.
//! Prints the per-level table and exits nonzero if a target fails.

use darkside_bench::report::{
    check, json_arg, pipeline_report_json, print_level_table, print_run_header, write_json_file,
};
use darkside_core::{Pipeline, PipelineConfig};

fn main() {
    let json_path = json_arg().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let start = std::time::Instant::now();
    let pipeline = Pipeline::build(PipelineConfig::default_scaled()).expect("pipeline build");
    let report = pipeline.run().expect("pipeline run");
    print_run_header("exp_fig4", &report);
    print_level_table(&report);
    println!("elapsed: {:.1}s", start.elapsed().as_secs_f64());
    if let Some(path) = &json_path {
        write_json_file(path, &pipeline_report_json("exp_fig4", &report))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("recorded {path}");
    }

    let dense = report.dense();
    let p90 = report
        .levels
        .iter()
        .find(|l| l.label == "90%")
        .expect("90% level in the sweep");
    let ratio = p90.mean_hypotheses / dense.mean_hypotheses;
    let mut ok = check(
        "hypotheses explode at 90%",
        ratio >= 1.5,
        format!(
            "{:.1} → {:.1} hyps/frame ({ratio:.2}×, target ≥ 1.5×)",
            dense.mean_hypotheses, p90.mean_hypotheses
        ),
    );
    ok &= check(
        "WER preserved at 90%",
        (p90.wer_percent - dense.wer_percent).abs() <= 1.0,
        format!(
            "dense {:.2}% vs 90% {:.2}% (|Δ| ≤ 1 point)",
            dense.wer_percent, p90.wer_percent
        ),
    );
    std::process::exit(if ok { 0 } else { 1 });
}
