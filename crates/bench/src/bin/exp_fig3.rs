//! Fig. 3 reproduction: softmax confidence collapse under magnitude
//! pruning (the paper's core observation, DESIGN.md §4).
//!
//! Runs the full scaled pipeline — corpus → train → {prune, retrain} ×
//! {70, 80, 90 %} → decode — and checks the figure's shape targets:
//! mean top-1 confidence decreases monotonically with sparsity, and the
//! 90 % level shows the largest single drop. Prints the per-level table in
//! EXPERIMENTS.md format and exits nonzero if a target fails.

use darkside_bench::report::{
    check, json_arg, pipeline_report_json, print_level_table, print_run_header, write_json_file,
};
use darkside_core::{Pipeline, PipelineConfig};

fn main() {
    let json_path = json_arg().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let start = std::time::Instant::now();
    let pipeline = Pipeline::build(PipelineConfig::default_scaled()).expect("pipeline build");
    let report = pipeline.run().expect("pipeline run");
    print_run_header("exp_fig3", &report);
    print_level_table(&report);
    println!("elapsed: {:.1}s", start.elapsed().as_secs_f64());
    if let Some(path) = &json_path {
        write_json_file(path, &pipeline_report_json("exp_fig3", &report))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("recorded {path}");
    }

    let conf: Vec<f64> = report.levels.iter().map(|l| l.mean_confidence).collect();
    let labels: Vec<&str> = report.levels.iter().map(|l| l.label.as_str()).collect();
    let mut ok = check(
        "dense regime",
        conf[0] > 0.5,
        format!(
            "dense confidence {:.4} (> 0.5: trained, not chance)",
            conf[0]
        ),
    );
    ok &= check(
        "monotone collapse",
        conf.windows(2).all(|w| w[1] < w[0]),
        format!("confidence over {labels:?}: {conf:?}"),
    );
    let drops: Vec<f64> = conf.windows(2).map(|w| w[0] - w[1]).collect();
    let last = *drops.last().expect("at least one prune level");
    ok &= check(
        "largest drop at 90%",
        drops.iter().all(|&d| d <= last),
        format!("per-step drops {drops:?}"),
    );
    std::process::exit(if ok { 0 } else { 1 });
}
