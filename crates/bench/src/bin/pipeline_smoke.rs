//! CI perf-smoke: a tiny end-to-end pipeline run (ISSUE 2 satellite).
//!
//! Trains the `PipelineConfig::smoke()` system — small corpus, small model,
//! a few epochs — decodes the held-out set dense and at 90 % sparsity, and
//! asserts the *sign* of the paper's effect: pruned confidence below dense
//! confidence. Exits nonzero (and prints the table) when the invariant
//! breaks, so CI catches a regression in any layer of the corpus → train →
//! prune → decode path.

use darkside_bench::report::{json_arg, pipeline_report_json, write_json_file};
use darkside_core::{Pipeline, PipelineConfig};

fn main() {
    let json_path = json_arg().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let start = std::time::Instant::now();
    let pipeline = Pipeline::build(PipelineConfig::smoke()).expect("smoke pipeline build");
    let report = pipeline.run().expect("smoke pipeline run");

    println!(
        "pipeline_smoke: {} train frames, {} test frames, graph {} states / {} arcs, {} params",
        report.train_frames,
        report.test_frames,
        report.graph_states,
        report.graph_arcs,
        report.model_params
    );
    println!(
        "train: final loss {:.3}, frame accuracy {:.3}",
        report.final_train_loss, report.final_train_accuracy
    );
    println!(
        "{:<8} {:>9} {:>11} {:>10} {:>8} {:>12} {:>10}",
        "level", "sparsity", "confidence", "frame-acc", "WER%", "hyps/frame", "best-cost"
    );
    for level in &report.levels {
        println!(
            "{:<8} {:>8.1}% {:>11.4} {:>10.4} {:>8.2} {:>12.1} {:>10.1}",
            level.label,
            level.sparsity * 100.0,
            level.mean_confidence,
            level.frame_accuracy,
            level.wer_percent,
            level.mean_hypotheses,
            level.mean_best_cost
        );
    }
    println!("elapsed: {:.1}s", start.elapsed().as_secs_f64());
    if let Some(path) = &json_path {
        write_json_file(path, &pipeline_report_json("pipeline_smoke", &report))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("recorded {path}");
    }

    let dense = report.dense();
    let pruned = report.pruned().last().expect("one pruned level");
    assert!(
        dense.mean_confidence > 0.2,
        "dense model failed to train (confidence {:.4} ≈ chance); \
         the smoke config no longer reaches the paper's operating regime",
        dense.mean_confidence
    );
    assert!(
        pruned.mean_confidence < dense.mean_confidence,
        "confidence did not drop under pruning: dense {:.4} vs {} {:.4}",
        dense.mean_confidence,
        pruned.label,
        pruned.mean_confidence
    );
    println!(
        "OK: confidence drop {:.4} → {:.4} at {} sparsity",
        dense.mean_confidence, pruned.mean_confidence, pruned.label
    );
}
