//! Records the repo's compute-substrate perf baseline into
//! `BENCH_compute.json` (schema documented in EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p darkside-bench --bin perf_baseline`
//! (optionally `-- --out <path>`; default `BENCH_compute.json` in the
//! working directory).
//!
//! Before timing anything it cross-checks the optimized kernels against the
//! naive oracles, so a perf record can never be produced by a wrong kernel.

use darkside_bench::{bench_with, BenchOptions, BenchResult};
use darkside_nn::check::{assert_matrices_close, assert_slices_close, random_matrix};
use darkside_nn::{gemm_naive, gemm_with_threads, Frame, FrameScorer, Matrix, Mlp, Rng};
use darkside_pruning::{prune_to_sparsity, prune_to_sparsity_blocked, Bsr, Csr};
use darkside_quant::{
    kpad_for, pack_activations_i8, pack_weights_i8, qgemm, qgemm_ref, quantize_value, QBsr,
};
use std::hint::black_box;

const GEMM_SIZE: usize = 512;
/// Batch width for the SpMM benches (a typical micro-batched utterance).
const SPMM_BATCH: usize = 128;
const GEMM_SPEEDUP_TARGET: f64 = 4.0;
const SPMV_SPEEDUP_TARGET: f64 = 2.0;
/// Vectorized+banded CSR SpMM over the pre-ISSUE-6 scalar loop. Modest on
/// one core (quad-unrolling alone), grows with cores.
const SPMM_CSR_SPEEDUP_TARGET: f64 = 1.1;
/// Register-tiled BSR SpMM at 90 % structured sparsity vs the dense GEMM of
/// the same layer shape — the "sparse serving beats dense" claim in kernel
/// form. ~10 % of the flops at dense-like efficiency leaves huge headroom
/// above this conservative floor.
const BSR_VS_DENSE_TARGET: f64 = 2.0;
/// Quantized BSR SpMM vs the f32 BSR SpMM at the same 90 % structured mask
/// and batch, in GFLOP/s-equivalent (identical nominal flops, so this is
/// the wall-clock ratio). int8 weights move 4× fewer bytes and each
/// `madd` retires 16 MACs vs FMA's 8 — the ISSUE 10 bandwidth-win gate.
const QBSR_VS_F32_BSR_TARGET: f64 = 1.5;

fn main() {
    let out_path = match parse_out_arg() {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    // Fail on an unwritable destination *before* minutes of benching.
    if let Err(e) = std::fs::write(&out_path, "") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rng = Rng::new(0xBEEF);

    // --- correctness gate -------------------------------------------------
    verify_kernels(&mut rng, threads);
    println!("kernel correctness vs naive oracle: ok\n");

    let mut results: Vec<BenchResult> = Vec::new();

    // --- gemm: naive vs blocked vs blocked+threads at 512^3 ---------------
    let a = random_matrix(&mut rng, GEMM_SIZE, GEMM_SIZE, 1.0);
    let b = random_matrix(&mut rng, GEMM_SIZE, GEMM_SIZE, 1.0);
    let mut c = Matrix::zeros(GEMM_SIZE, GEMM_SIZE);
    let gemm_flops = 2.0 * (GEMM_SIZE as f64).powi(3);
    let naive = bench_with("gemm_naive_512", BenchOptions::slow(), || {
        gemm_naive(
            GEMM_SIZE,
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(a.as_slice()),
            black_box(b.as_slice()),
            c.as_mut_slice(),
        )
    })
    .with_flops(gemm_flops);
    println!("{}", naive.summary());
    let blocked_1t = bench_with("gemm_blocked_1t_512", BenchOptions::slow(), || {
        gemm_with_threads(
            GEMM_SIZE,
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(a.as_slice()),
            black_box(b.as_slice()),
            c.as_mut_slice(),
            1,
        )
    })
    .with_flops(gemm_flops);
    println!("{}", blocked_1t.summary());
    let blocked_mt = bench_with("gemm_blocked_mt_512", BenchOptions::slow(), || {
        gemm_with_threads(
            GEMM_SIZE,
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(a.as_slice()),
            black_box(b.as_slice()),
            c.as_mut_slice(),
            threads,
        )
    })
    .with_flops(gemm_flops);
    println!("{}", blocked_mt.summary());
    let gemm_speedup = blocked_mt.speedup_over(&naive);

    // --- spmv: CSR at 90 % sparsity vs dense gemv, 512x512 ----------------
    let dense = Matrix::from_fn(GEMM_SIZE, GEMM_SIZE, |_, _| rng.normal_scaled(0.0, 0.1));
    let result = prune_to_sparsity(&dense, 0.9, 0.002);
    let mut masked = dense.clone();
    result.mask.apply(&mut masked);
    let csr = Csr::from_dense(&masked).expect("masked layer fits CSR");
    let x: Vec<f32> = (0..GEMM_SIZE).map(|_| rng.normal()).collect();
    let mut y = vec![0.0f32; GEMM_SIZE];
    let gemv = bench_with("gemv_dense_512", BenchOptions::default(), || {
        darkside_nn::gemv_naive(
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(dense.as_slice()),
            black_box(&x),
            &mut y,
        )
    })
    .with_flops(2.0 * (GEMM_SIZE * GEMM_SIZE) as f64);
    println!("{}", gemv.summary());
    let spmv = bench_with("spmv_csr_90_512", BenchOptions::default(), || {
        csr.spmv(black_box(&x), &mut y)
    })
    .with_flops(2.0 * csr.nnz() as f64);
    println!("{} ({:.2}% sparse)", spmv.summary(), csr.sparsity() * 100.0);
    let spmv_speedup = spmv.speedup_over(&gemv);

    // --- spmm: scalar CSR vs banded CSR vs register-tiled BSR (ISSUE 6) ---
    // Serving orientation: 512×512 weights at 90 % sparsity times a
    // 512×128 activation block. The BSR operand is pruned in 8×8 tiles
    // (register-tile aligned), the CSR operands unstructured — the exact
    // structured-vs-unstructured serving comparison, kernel-only.
    let xt = random_matrix(&mut rng, GEMM_SIZE, SPMM_BATCH, 1.0);
    let mut yt = Matrix::zeros(GEMM_SIZE, SPMM_BATCH);
    let csr_flops = 2.0 * (csr.nnz() * SPMM_BATCH) as f64;
    let spmm_scalar = bench_with("spmm_csr_scalar_90_512", BenchOptions::default(), || {
        csr.spmm_reference(black_box(&xt), &mut yt)
    })
    .with_flops(csr_flops);
    println!("{}", spmm_scalar.summary());
    let spmm_csr = bench_with("spmm_csr_90_512", BenchOptions::default(), || {
        csr.spmm(black_box(&xt), &mut yt)
    })
    .with_flops(csr_flops);
    println!("{}", spmm_csr.summary());
    let blocked = prune_to_sparsity_blocked(&dense, 0.9, 0.002, 8, 8);
    let mut bmasked = dense.clone();
    blocked.mask.apply(&mut bmasked);
    let bsr = Bsr::from_dense(&bmasked, 8, 8).expect("masked layer fits BSR");
    // f32 BSR traffic: 256-byte blocks + u32 indices, f32 activations in,
    // f32 product out (ideal-cache model, same for every entry below).
    let bsr_f32_bytes = (bsr.num_blocks() * (64 * 4 + 4)
        + (GEMM_SIZE / 8 + 1) * 4
        + 2 * 4 * GEMM_SIZE * SPMM_BATCH) as f64;
    let bsr_spmm = bench_with("bsr_spmm_90_512", BenchOptions::default(), || {
        bsr.spmm(black_box(&xt), &mut yt)
    })
    .with_flops(2.0 * (bsr.num_blocks() * 64 * SPMM_BATCH) as f64)
    .with_bytes(bsr_f32_bytes);
    println!(
        "{} ({:.2}% sparse, {} blocks)",
        bsr_spmm.summary(),
        bsr.sparsity() * 100.0,
        bsr.num_blocks()
    );
    // Dense comparator: the same layer batch served dense.
    let dense_gemm = bench_with("gemm_dense_512x128", BenchOptions::default(), || {
        gemm_with_threads(
            GEMM_SIZE,
            SPMM_BATCH,
            GEMM_SIZE,
            black_box(dense.as_slice()),
            black_box(xt.as_slice()),
            yt.as_mut_slice(),
            threads,
        )
    })
    .with_flops(2.0 * (GEMM_SIZE * GEMM_SIZE * SPMM_BATCH) as f64)
    .with_bytes((4 * (GEMM_SIZE * GEMM_SIZE + 2 * GEMM_SIZE * SPMM_BATCH)) as f64);
    println!("{}", dense_gemm.summary());
    let spmm_csr_speedup = spmm_csr.speedup_over(&spmm_scalar);
    let bsr_vs_dense = bsr_spmm.speedup_over(&dense_gemm);
    let bsr_vs_csr = bsr_spmm.speedup_over(&spmm_csr);

    // --- int8: quantized GEMM + quantized BSR SpMM (ISSUE 10) -------------
    // Same serving shapes as the f32 comparators above. Per-row weight
    // scales, one activation scale; operands are prepacked — weights are
    // static in serving, and serve_load measures the per-batch activation
    // quantization end-to-end.
    let x_scale = activation_scale(&xt);
    let mut xq = vec![0i8; SPMM_BATCH * GEMM_SIZE];
    for j in 0..SPMM_BATCH {
        for p in 0..GEMM_SIZE {
            xq[j * GEMM_SIZE + p] = quantize_value(xt.get(p, j), x_scale);
        }
    }
    let ws_dense = row_scales(&dense);
    let mut wq = vec![0i8; GEMM_SIZE * GEMM_SIZE];
    for o in 0..GEMM_SIZE {
        for p in 0..GEMM_SIZE {
            wq[o * GEMM_SIZE + p] = quantize_value(dense.get(o, p), ws_dense[o]);
        }
    }
    let kpad = kpad_for(GEMM_SIZE);
    let apack = pack_weights_i8(GEMM_SIZE, GEMM_SIZE, &wq, kpad);
    let bpack = pack_activations_i8(SPMM_BATCH, GEMM_SIZE, &xq, kpad);
    let mut qout = vec![0i32; GEMM_SIZE * SPMM_BATCH];
    let qgemm_bench = bench_with("qgemm_512", BenchOptions::default(), || {
        qgemm(
            GEMM_SIZE,
            SPMM_BATCH,
            GEMM_SIZE,
            kpad,
            black_box(&apack),
            black_box(&bpack),
            &mut qout,
        )
    })
    .with_flops(2.0 * (GEMM_SIZE * GEMM_SIZE * SPMM_BATCH) as f64)
    .with_bytes((apack.len() + 2 * bpack.len() + 4 * qout.len()) as f64);
    println!("{}", qgemm_bench.summary());
    let ws_blocked = row_scales(&bmasked);
    let qbsr = QBsr::from_dense_rows(&bmasked, &ws_blocked);
    let qbsr_bench = bench_with("qbsr_spmm_90_512", BenchOptions::default(), || {
        qbsr.spmm(SPMM_BATCH, black_box(&bpack), &mut qout)
    })
    .with_flops(2.0 * (qbsr.num_blocks() * 64 * SPMM_BATCH) as f64)
    .with_bytes((qbsr.weight_bytes() + 2 * bpack.len() + 4 * qout.len()) as f64);
    println!(
        "{} ({:.2}% sparse, {} blocks, {} weight bytes vs f32 {})",
        qbsr_bench.summary(),
        qbsr.sparsity() * 100.0,
        qbsr.num_blocks(),
        qbsr.weight_bytes(),
        bsr.num_blocks() * (64 * 4 + 4) + (GEMM_SIZE / 8 + 1) * 4,
    );
    // Identical nominal flops per pair, so the GFLOP/s-equivalent ratio is
    // the effective-throughput ratio the ISSUE 10 gate asks for.
    let qgemm_vs_dense = qgemm_bench.gflops().unwrap_or(0.0) / dense_gemm.gflops().unwrap_or(1.0);
    let qbsr_vs_f32_bsr = qbsr_bench.gflops().unwrap_or(0.0) / bsr_spmm.gflops().unwrap_or(1.0);

    // --- batched utterance scoring ----------------------------------------
    let mlp = Mlp::kaldi_style(360, 512, 4, 4, 90, &mut rng);
    let frames: Vec<Frame> = (0..128)
        .map(|_| Frame((0..360).map(|_| rng.normal()).collect()))
        .collect();
    let per_frame = bench_with("score_per_frame_128", BenchOptions::default(), || {
        for f in &frames {
            black_box(mlp.score_frame(black_box(f)));
        }
    });
    println!("{}", per_frame.summary());
    let batched = bench_with("score_batched_128", BenchOptions::default(), || {
        black_box(mlp.score_frames(black_box(&frames)));
    });
    println!("{}", batched.summary());
    let batch_speedup = batched.speedup_over(&per_frame);

    results.extend([
        naive,
        blocked_1t,
        blocked_mt,
        gemv,
        spmv,
        spmm_scalar,
        spmm_csr,
        bsr_spmm,
        dense_gemm,
        qgemm_bench,
        qbsr_bench,
        per_frame,
        batched,
    ]);

    // --- record -----------------------------------------------------------
    let gemm_pass = gemm_speedup >= GEMM_SPEEDUP_TARGET;
    let spmv_pass = spmv_speedup >= SPMV_SPEEDUP_TARGET;
    let spmm_csr_pass = spmm_csr_speedup >= SPMM_CSR_SPEEDUP_TARGET;
    let bsr_pass = bsr_vs_dense >= BSR_VS_DENSE_TARGET;
    let qbsr_pass = qbsr_vs_f32_bsr >= QBSR_VS_F32_BSR_TARGET;
    println!();
    println!(
        "gemm blocked+mt vs naive @512^3 : {gemm_speedup:.2}x (target {GEMM_SPEEDUP_TARGET}x) {}",
        if gemm_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "spmv csr vs dense gemv @90%/512 : {spmv_speedup:.2}x (target {SPMV_SPEEDUP_TARGET}x) {}",
        if spmv_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "spmm csr vs scalar csr @90%/512 : {spmm_csr_speedup:.2}x (target {SPMM_CSR_SPEEDUP_TARGET}x) {}",
        if spmm_csr_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "bsr spmm vs dense gemm @90%/512 : {bsr_vs_dense:.2}x (target {BSR_VS_DENSE_TARGET}x) {}",
        if bsr_pass { "PASS" } else { "FAIL" }
    );
    println!("bsr spmm vs banded csr @90%/512 : {bsr_vs_csr:.2}x");
    println!(
        "qbsr spmm vs f32 bsr @90%/512   : {qbsr_vs_f32_bsr:.2}x (target {QBSR_VS_F32_BSR_TARGET}x) {}",
        if qbsr_pass { "PASS" } else { "FAIL" }
    );
    println!("qgemm vs dense f32 gemm 512x128 : {qgemm_vs_dense:.2}x");
    println!("batched vs per-frame scoring    : {batch_speedup:.2}x");

    let benches_json: Vec<String> = results
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"schema_version\": 3,\n  \"generated_by\": \"perf_baseline\",\n  \"host\": {{\"hw_threads\": {threads}, \"arch\": \"{arch}\"}},\n  \"benches\": [\n{benches}\n  ],\n  \"derived\": {{\n    \"gemm_blocked_mt_vs_naive_512\": {{\"speedup\": {gemm_speedup:.3}, \"target\": {GEMM_SPEEDUP_TARGET}, \"pass\": {gemm_pass}}},\n    \"spmv_csr90_vs_gemv_512\": {{\"speedup\": {spmv_speedup:.3}, \"target\": {SPMV_SPEEDUP_TARGET}, \"pass\": {spmv_pass}}},\n    \"spmm_csr90_vs_scalar_512\": {{\"speedup\": {spmm_csr_speedup:.3}, \"target\": {SPMM_CSR_SPEEDUP_TARGET}, \"pass\": {spmm_csr_pass}}},\n    \"bsr_spmm90_vs_dense_gemm_512x128\": {{\"speedup\": {bsr_vs_dense:.3}, \"target\": {BSR_VS_DENSE_TARGET}, \"pass\": {bsr_pass}}},\n    \"bsr_spmm90_vs_csr_spmm90_512\": {{\"speedup\": {bsr_vs_csr:.3}}},\n    \"qbsr_spmm90_vs_f32_bsr_spmm90_512\": {{\"speedup\": {qbsr_vs_f32_bsr:.3}, \"target\": {QBSR_VS_F32_BSR_TARGET}, \"pass\": {qbsr_pass}}},\n    \"qgemm_vs_dense_gemm_512x128\": {{\"speedup\": {qgemm_vs_dense:.3}}},\n    \"batched_vs_per_frame_score_128\": {{\"speedup\": {batch_speedup:.3}}}\n  }}\n}}\n",
        arch = std::env::consts::ARCH,
        benches = benches_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nrecorded {out_path}");
}

/// Per-output-row symmetric weight scales (`max|row| / 127`, 1.0 for
/// all-zero rows) — the same rule `darkside-quant`'s calibration applies.
fn row_scales(w: &Matrix) -> Vec<f32> {
    (0..w.rows())
        .map(|o| {
            let m = (0..w.cols()).fold(0.0f32, |m, i| m.max(w.get(o, i).abs()));
            if m > 0.0 {
                m / 127.0
            } else {
                1.0
            }
        })
        .collect()
}

/// One symmetric activation scale over the whole block.
fn activation_scale(x: &Matrix) -> f32 {
    let m = x.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if m > 0.0 {
        m / 127.0
    } else {
        1.0
    }
}

/// The optimized kernels must agree with the naive oracles before any
/// number is recorded.
fn verify_kernels(rng: &mut Rng, threads: usize) {
    let (m, n, k) = (173, 129, 97); // deliberately not tile multiples
    let a = random_matrix(rng, m, k, 1.0);
    let b = random_matrix(rng, k, n, 1.0);
    let mut want = Matrix::zeros(m, n);
    gemm_naive(m, n, k, a.as_slice(), b.as_slice(), want.as_mut_slice());
    for t in [1, threads, threads + 3] {
        let mut got = Matrix::zeros(m, n);
        gemm_with_threads(m, n, k, a.as_slice(), b.as_slice(), got.as_mut_slice(), t);
        assert_matrices_close(&got, &want, 1e-4, &format!("gemm {t} threads"));
    }

    let dense = Matrix::from_fn(64, 80, |_, _| rng.normal_scaled(0.0, 0.1));
    let pr = prune_to_sparsity(&dense, 0.9, 0.01);
    let mut masked = dense.clone();
    pr.mask.apply(&mut masked);
    let csr = Csr::from_dense(&masked).expect("masked layer fits CSR");
    let x: Vec<f32> = (0..80).map(|_| rng.normal()).collect();
    let mut got = vec![0.0f32; 64];
    csr.spmv(&x, &mut got);
    let mut want = vec![0.0f32; 64];
    darkside_nn::gemv_naive(64, 80, masked.as_slice(), &x, &mut want);
    assert_slices_close(&got, &want, 1e-4, "spmv vs gemv");

    // SpMM kernels: the banded CSR kernel must match the scalar reference
    // *bitwise* (same accumulation order is the ISSUE 6 contract), and the
    // register-tiled BSR kernel must match the dense product of its own
    // masked operand.
    let xt = random_matrix(rng, 80, 33, 1.0);
    let mut want = Matrix::zeros(64, 33);
    csr.spmm_reference(&xt, &mut want);
    let mut got = Matrix::zeros(64, 33);
    csr.spmm(&xt, &mut got);
    for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "spmm vs scalar reference");
    }
    let bl = prune_to_sparsity_blocked(&dense, 0.9, 0.05, 8, 8);
    let mut bmasked = dense.clone();
    bl.mask.apply(&mut bmasked);
    let bsr = Bsr::from_dense(&bmasked, 8, 8).expect("masked layer fits BSR");
    let mut want = Matrix::zeros(64, 33);
    gemm_naive(
        64,
        33,
        80,
        bmasked.as_slice(),
        xt.as_slice(),
        want.as_mut_slice(),
    );
    let mut got = Matrix::zeros(64, 33);
    bsr.spmm(&xt, &mut got);
    assert_matrices_close(&got, &want, 1e-4, "bsr spmm vs masked dense gemm");

    // Int8 kernels must match the naive widening oracle *bit-for-bit*
    // (the ISSUE 10 contract — integer accumulation is exact).
    let (m, n, k) = (20, 13, 19);
    let wq: Vec<i8> = (0..m * k)
        .map(|_| rng.uniform(-127.4, 127.4) as i8)
        .collect();
    let xq: Vec<i8> = (0..n * k)
        .map(|_| rng.uniform(-127.4, 127.4) as i8)
        .collect();
    let mut want = vec![0i32; m * n];
    qgemm_ref(m, n, k, &wq, &xq, &mut want);
    let kp = kpad_for(k);
    let mut got = vec![1i32; m * n];
    qgemm(
        m,
        n,
        k,
        kp,
        &pack_weights_i8(m, k, &wq, kp),
        &pack_activations_i8(n, k, &xq, kp),
        &mut got,
    );
    assert_eq!(got, want, "qgemm vs widening oracle");

    // Quantized BSR over the same blocked mask: dropped tiles are all-zero
    // in `bmasked`, so elementwise quantization of the masked dense matrix
    // is an exact oracle for the block store.
    let scales = row_scales(&bmasked);
    let qb = QBsr::from_dense_rows(&bmasked, &scales);
    let xq2: Vec<i8> = (0..33 * 80)
        .map(|_| rng.uniform(-127.4, 127.4) as i8)
        .collect();
    let mut wq2 = vec![0i8; 64 * 80];
    for o in 0..64 {
        for i in 0..80 {
            wq2[o * 80 + i] = quantize_value(bmasked.get(o, i), scales[o]);
        }
    }
    let mut want = vec![0i32; 64 * 33];
    qgemm_ref(64, 33, 80, &wq2, &xq2, &mut want);
    let mut got = vec![1i32; 64 * 33];
    qb.spmm(33, &pack_activations_i8(33, 80, &xq2, qb.kpad()), &mut got);
    assert_eq!(got, want, "qbsr spmm vs widening oracle");
}

fn parse_out_arg() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => Ok("BENCH_compute.json".to_string()),
        [flag, path] if flag == "--out" => Ok(path.clone()),
        [flag] if flag == "--out" => Err("--out requires a path".to_string()),
        other => Err(format!(
            "unknown arguments {:?}; usage: perf_baseline [--out <path>]",
            other
        )),
    }
}
