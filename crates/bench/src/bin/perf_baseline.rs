//! Records the repo's compute-substrate perf baseline into
//! `BENCH_compute.json` (schema documented in EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p darkside-bench --bin perf_baseline`
//! (optionally `-- --out <path>`; default `BENCH_compute.json` in the
//! working directory).
//!
//! Before timing anything it cross-checks the optimized kernels against the
//! naive oracles, so a perf record can never be produced by a wrong kernel.

use darkside_bench::{bench_with, BenchOptions, BenchResult};
use darkside_nn::check::{assert_matrices_close, assert_slices_close, random_matrix};
use darkside_nn::{gemm_naive, gemm_with_threads, Frame, FrameScorer, Matrix, Mlp, Rng};
use darkside_pruning::{prune_to_sparsity, Csr};
use std::hint::black_box;

const GEMM_SIZE: usize = 512;
const GEMM_SPEEDUP_TARGET: f64 = 4.0;
const SPMV_SPEEDUP_TARGET: f64 = 2.0;

fn main() {
    let out_path = match parse_out_arg() {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    // Fail on an unwritable destination *before* minutes of benching.
    if let Err(e) = std::fs::write(&out_path, "") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rng = Rng::new(0xBEEF);

    // --- correctness gate -------------------------------------------------
    verify_kernels(&mut rng, threads);
    println!("kernel correctness vs naive oracle: ok\n");

    let mut results: Vec<BenchResult> = Vec::new();

    // --- gemm: naive vs blocked vs blocked+threads at 512^3 ---------------
    let a = random_matrix(&mut rng, GEMM_SIZE, GEMM_SIZE, 1.0);
    let b = random_matrix(&mut rng, GEMM_SIZE, GEMM_SIZE, 1.0);
    let mut c = Matrix::zeros(GEMM_SIZE, GEMM_SIZE);
    let gemm_flops = 2.0 * (GEMM_SIZE as f64).powi(3);
    let naive = bench_with("gemm_naive_512", BenchOptions::slow(), || {
        gemm_naive(
            GEMM_SIZE,
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(a.as_slice()),
            black_box(b.as_slice()),
            c.as_mut_slice(),
        )
    })
    .with_flops(gemm_flops);
    println!("{}", naive.summary());
    let blocked_1t = bench_with("gemm_blocked_1t_512", BenchOptions::slow(), || {
        gemm_with_threads(
            GEMM_SIZE,
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(a.as_slice()),
            black_box(b.as_slice()),
            c.as_mut_slice(),
            1,
        )
    })
    .with_flops(gemm_flops);
    println!("{}", blocked_1t.summary());
    let blocked_mt = bench_with("gemm_blocked_mt_512", BenchOptions::slow(), || {
        gemm_with_threads(
            GEMM_SIZE,
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(a.as_slice()),
            black_box(b.as_slice()),
            c.as_mut_slice(),
            threads,
        )
    })
    .with_flops(gemm_flops);
    println!("{}", blocked_mt.summary());
    let gemm_speedup = blocked_mt.speedup_over(&naive);

    // --- spmv: CSR at 90 % sparsity vs dense gemv, 512x512 ----------------
    let dense = Matrix::from_fn(GEMM_SIZE, GEMM_SIZE, |_, _| rng.normal_scaled(0.0, 0.1));
    let result = prune_to_sparsity(&dense, 0.9, 0.002);
    let mut masked = dense.clone();
    result.mask.apply(&mut masked);
    let csr = Csr::from_dense(&masked).expect("masked layer fits CSR");
    let x: Vec<f32> = (0..GEMM_SIZE).map(|_| rng.normal()).collect();
    let mut y = vec![0.0f32; GEMM_SIZE];
    let gemv = bench_with("gemv_dense_512", BenchOptions::default(), || {
        darkside_nn::gemv_naive(
            GEMM_SIZE,
            GEMM_SIZE,
            black_box(dense.as_slice()),
            black_box(&x),
            &mut y,
        )
    })
    .with_flops(2.0 * (GEMM_SIZE * GEMM_SIZE) as f64);
    println!("{}", gemv.summary());
    let spmv = bench_with("spmv_csr_90_512", BenchOptions::default(), || {
        csr.spmv(black_box(&x), &mut y)
    })
    .with_flops(2.0 * csr.nnz() as f64);
    println!("{} ({:.2}% sparse)", spmv.summary(), csr.sparsity() * 100.0);
    let spmv_speedup = spmv.speedup_over(&gemv);

    // --- batched utterance scoring ----------------------------------------
    let mlp = Mlp::kaldi_style(360, 512, 4, 4, 90, &mut rng);
    let frames: Vec<Frame> = (0..128)
        .map(|_| Frame((0..360).map(|_| rng.normal()).collect()))
        .collect();
    let per_frame = bench_with("score_per_frame_128", BenchOptions::default(), || {
        for f in &frames {
            black_box(mlp.score_frame(black_box(f)));
        }
    });
    println!("{}", per_frame.summary());
    let batched = bench_with("score_batched_128", BenchOptions::default(), || {
        black_box(mlp.score_frames(black_box(&frames)));
    });
    println!("{}", batched.summary());
    let batch_speedup = batched.speedup_over(&per_frame);

    results.extend([
        naive, blocked_1t, blocked_mt, gemv, spmv, per_frame, batched,
    ]);

    // --- record -----------------------------------------------------------
    let gemm_pass = gemm_speedup >= GEMM_SPEEDUP_TARGET;
    let spmv_pass = spmv_speedup >= SPMV_SPEEDUP_TARGET;
    println!();
    println!(
        "gemm blocked+mt vs naive @512^3 : {gemm_speedup:.2}x (target {GEMM_SPEEDUP_TARGET}x) {}",
        if gemm_pass { "PASS" } else { "FAIL" }
    );
    println!(
        "spmv csr vs dense gemv @90%/512 : {spmv_speedup:.2}x (target {SPMV_SPEEDUP_TARGET}x) {}",
        if spmv_pass { "PASS" } else { "FAIL" }
    );
    println!("batched vs per-frame scoring    : {batch_speedup:.2}x");

    let benches_json: Vec<String> = results
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"generated_by\": \"perf_baseline\",\n  \"host\": {{\"hw_threads\": {threads}, \"arch\": \"{arch}\"}},\n  \"benches\": [\n{benches}\n  ],\n  \"derived\": {{\n    \"gemm_blocked_mt_vs_naive_512\": {{\"speedup\": {gemm_speedup:.3}, \"target\": {GEMM_SPEEDUP_TARGET}, \"pass\": {gemm_pass}}},\n    \"spmv_csr90_vs_gemv_512\": {{\"speedup\": {spmv_speedup:.3}, \"target\": {SPMV_SPEEDUP_TARGET}, \"pass\": {spmv_pass}}},\n    \"batched_vs_per_frame_score_128\": {{\"speedup\": {batch_speedup:.3}}}\n  }}\n}}\n",
        arch = std::env::consts::ARCH,
        benches = benches_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nrecorded {out_path}");
}

/// The optimized kernels must agree with the naive oracles before any
/// number is recorded.
fn verify_kernels(rng: &mut Rng, threads: usize) {
    let (m, n, k) = (173, 129, 97); // deliberately not tile multiples
    let a = random_matrix(rng, m, k, 1.0);
    let b = random_matrix(rng, k, n, 1.0);
    let mut want = Matrix::zeros(m, n);
    gemm_naive(m, n, k, a.as_slice(), b.as_slice(), want.as_mut_slice());
    for t in [1, threads, threads + 3] {
        let mut got = Matrix::zeros(m, n);
        gemm_with_threads(m, n, k, a.as_slice(), b.as_slice(), got.as_mut_slice(), t);
        assert_matrices_close(&got, &want, 1e-4, &format!("gemm {t} threads"));
    }

    let dense = Matrix::from_fn(64, 80, |_, _| rng.normal_scaled(0.0, 0.1));
    let pr = prune_to_sparsity(&dense, 0.9, 0.01);
    let mut masked = dense.clone();
    pr.mask.apply(&mut masked);
    let csr = Csr::from_dense(&masked).expect("masked layer fits CSR");
    let x: Vec<f32> = (0..80).map(|_| rng.normal()).collect();
    let mut got = vec![0.0f32; 64];
    csr.spmv(&x, &mut got);
    let mut want = vec![0.0f32; 64];
    darkside_nn::gemv_naive(64, 80, masked.as_slice(), &x, &mut want);
    assert_slices_close(&got, &want, 1e-4, "spmv vs gemv");
}

fn parse_out_arg() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => Ok("BENCH_compute.json".to_string()),
        [flag, path] if flag == "--out" => Ok(path.clone()),
        [flag] if flag == "--out" => Err("--out requires a path".to_string()),
        other => Err(format!(
            "unknown arguments {:?}; usage: perf_baseline [--out <path>]",
            other
        )),
    }
}
