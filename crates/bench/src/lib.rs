//! # darkside-bench — perf measurement substrate
//!
//! Criterion-style micro-benchmarking without the criterion dependency (the
//! build environment is offline — DESIGN.md §6): [`harness`] calibrates
//! iteration counts, takes warmed-up wall-clock samples, and reports
//! median/min/mean ns per op plus GFLOP/s.
//!
//! Bench targets (`cargo bench -p darkside-bench --bench <name>`):
//! * `gemm` — naive oracle vs blocked vs blocked+threads, several sizes
//! * `spmv` — dense GEMV vs CSR SpMV/SpMM across sparsities
//! * `batched_score` — per-frame vs batched utterance scoring
//!
//! The binary `perf_baseline` runs the acceptance subset and records
//! `BENCH_compute.json`; `pipeline_baseline` runs the traced smoke pipeline
//! and records `BENCH_pipeline.json` (schemas in EXPERIMENTS.md) so later
//! PRs append comparable numbers. `trace_overhead` is the ISSUE 4 CI gate:
//! instrumented decode under the default `NullRecorder` must stay within
//! 5 % of the pre-instrumentation search loop.

//! The experiment binaries (`exp_fig3`, `exp_fig4`, `exp_fig7`,
//! `pipeline_smoke`) run the `darkside_core::Pipeline` end to end and check
//! the paper's shape targets; [`report`] holds their shared table
//! formatting and the `--json <path>` structured-report writer every
//! experiment accepts.

pub mod harness;
pub mod report;

pub use harness::{bench, bench_with, BenchOptions, BenchResult};
pub use report::{
    check, json_arg, print_level_table, print_policy_grid, print_policy_latency, print_run_header,
    write_json_file,
};
