//! Shared table formatting, shape-target checking, and `--json` report
//! writing for the experiment binaries (`exp_fig3`, `exp_fig4`, `exp_fig7`,
//! `pipeline_smoke`, `pipeline_baseline`).

use darkside_core::trace::Json;
use darkside_core::{LevelReport, PipelineReport, PolicyGridReport};
use std::io::Write;
use std::path::Path;

/// Print the run provenance line every experiment starts with.
pub fn print_run_header(name: &str, report: &PipelineReport) {
    println!(
        "{name}: {} params, {} train frames, {} test frames, graph {} states / {} arcs",
        report.model_params,
        report.train_frames,
        report.test_frames,
        report.graph_states,
        report.graph_arcs
    );
    println!(
        "train: final loss {:.3}, frame accuracy {:.3}",
        report.final_train_loss, report.final_train_accuracy
    );
}

/// Row tag for tables whose levels can repeat at the same pruning target
/// with different sparsity structures or scoring precisions: "90%" for
/// unstructured f32 rows, "90%+b8x8" for the structured re-run at the same
/// target, "90%+b8x8+int8" for its quantized ablation (ISSUE 10).
pub fn level_tag(label: &str, structure: &str, precision: &str) -> String {
    let mut tag = if structure == "unstructured" {
        label.to_string()
    } else {
        format!("{label}+{structure}")
    };
    if precision != "f32" {
        tag.push('+');
        tag.push_str(precision);
    }
    tag
}

/// Print the per-level metric table (markdown-ish, pasteable into
/// EXPERIMENTS.md).
pub fn print_level_table(report: &PipelineReport) {
    println!(
        "| {:<9} | {:>8} | {:>10} | {:>9} | {:>7} | {:>10} | {:>9} |",
        "level", "sparsity", "confidence", "frame-acc", "WER%", "hyps/frame", "best-cost"
    );
    println!(
        "|-----------|----------|------------|-----------|---------|------------|-----------|"
    );
    for level in &report.levels {
        println!(
            "| {:<9} | {:>7.1}% | {:>10.4} | {:>9.4} | {:>7.2} | {:>10.1} | {:>9.1} |",
            level_tag(&level.label, &level.structure, &level.precision),
            level.sparsity * 100.0,
            level.mean_confidence,
            level.frame_accuracy,
            level.wer_percent,
            level.mean_hypotheses,
            level.mean_best_cost
        );
    }
}

/// Print the per-level × per-policy search-effort table (`exp_fig7`;
/// markdown-ish, pasteable into EXPERIMENTS.md). The p50/p95/p99 columns
/// are the per-frame hypotheses percentiles (ISSUE 4) — the tail the
/// paper's Fig. 7 clamping argument is actually about.
pub fn print_policy_grid(report: &PolicyGridReport) {
    println!(
        "| {:<9} | {:<7} | {:>10} | {:>8} | {:>8} | {:>8} | {:>7} | {:>9} | {:>9} | {:>9} |",
        "level",
        "policy",
        "hyps/frame",
        "hyps-p50",
        "hyps-p95",
        "hyps-p99",
        "WER%",
        "evictions",
        "overflows",
        "occupancy"
    );
    println!(
        "|-----------|---------|------------|----------|----------|----------|---------|-----------|-----------|-----------|"
    );
    for level in &report.levels {
        for cell in &level.per_policy {
            println!(
                "| {:<9} | {:<7} | {:>10.1} | {:>8.0} | {:>8.0} | {:>8.0} | {:>7.2} | {:>9} | {:>9} | {:>9.1} |",
                level_tag(&level.label, &level.structure, &level.precision),
                cell.policy,
                cell.mean_hypotheses,
                cell.hyps_p50,
                cell.hyps_p95,
                cell.hyps_p99,
                cell.wer_percent,
                cell.evictions,
                cell.overflows,
                cell.mean_table_occupancy
            );
        }
    }
}

/// Print the per-level × per-policy frame-latency table. Only meaningful
/// when the grid ran under an installed recorder (`trace::with_recorder`);
/// untraced runs leave every percentile at zero and callers should skip
/// this table.
pub fn print_policy_latency(report: &PolicyGridReport) {
    println!(
        "| {:<9} | {:<7} | {:>11} | {:>11} | {:>11} |",
        "level", "policy", "frame-p50ns", "frame-p95ns", "frame-p99ns"
    );
    println!("|-----------|---------|-------------|-------------|-------------|");
    for level in &report.levels {
        for cell in &level.per_policy {
            println!(
                "| {:<9} | {:<7} | {:>11.0} | {:>11.0} | {:>11.0} |",
                level_tag(&level.label, &level.structure, &level.precision),
                cell.policy,
                cell.frame_ns_p50,
                cell.frame_ns_p95,
                cell.frame_ns_p99
            );
        }
    }
}

/// Record one shape-target check; returns `ok` so callers can fold.
pub fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

/// One [`LevelReport`] as JSON (every table column plus the ISSUE 4
/// percentile fields).
pub fn level_json(level: &LevelReport) -> Json {
    Json::obj(vec![
        ("label", Json::str(&level.label)),
        ("policy", Json::str(&level.policy)),
        ("structure", Json::str(&level.structure)),
        ("precision", Json::str(&level.precision)),
        ("sparsity", level.sparsity.into()),
        ("mean_confidence", level.mean_confidence.into()),
        ("frame_accuracy", level.frame_accuracy.into()),
        ("wer_percent", level.wer_percent.into()),
        ("mean_hypotheses", level.mean_hypotheses.into()),
        ("hyps_p50", level.hyps_p50.into()),
        ("hyps_p95", level.hyps_p95.into()),
        ("hyps_p99", level.hyps_p99.into()),
        ("frame_ns_p50", level.frame_ns_p50.into()),
        ("frame_ns_p95", level.frame_ns_p95.into()),
        ("frame_ns_p99", level.frame_ns_p99.into()),
        ("mean_best_cost", level.mean_best_cost.into()),
        ("evictions", level.evictions.into()),
        ("overflows", level.overflows.into()),
        ("mean_table_occupancy", level.mean_table_occupancy.into()),
        ("table_reads", level.table_reads.into()),
        ("table_writes", level.table_writes.into()),
        ("memo_hits", level.memo_hits.into()),
        ("memo_misses", level.memo_misses.into()),
        ("memo_evictions", level.memo_evictions.into()),
        ("memo_peak_resident", level.memo_peak_resident.into()),
    ])
}

/// A whole [`PipelineReport`] as JSON — what `exp_fig3`/`exp_fig4`/
/// `pipeline_smoke --json <path>` write for the CI artifact upload.
/// Schema 2: level rows carry a "precision" field (ISSUE 10).
pub fn pipeline_report_json(name: &str, report: &PipelineReport) -> Json {
    Json::obj(vec![
        ("schema_version", 2u64.into()),
        ("name", Json::str(name)),
        ("graph_kind", Json::str(&report.graph_kind)),
        ("train_frames", report.train_frames.into()),
        ("test_frames", report.test_frames.into()),
        ("graph_states", report.graph_states.into()),
        ("graph_arcs", report.graph_arcs.into()),
        ("model_params", report.model_params.into()),
        ("final_train_loss", report.final_train_loss.into()),
        ("final_train_accuracy", report.final_train_accuracy.into()),
        (
            "levels",
            Json::Arr(report.levels.iter().map(level_json).collect()),
        ),
    ])
}

/// A [`PolicyGridReport`] as JSON — what `exp_fig7 --json <path>` writes.
/// Schema 2: level objects and per-policy rows carry a "precision" field
/// (ISSUE 10).
pub fn policy_grid_json(name: &str, report: &PolicyGridReport) -> Json {
    Json::obj(vec![
        ("schema_version", 2u64.into()),
        ("name", Json::str(name)),
        (
            "policies",
            Json::Arr(report.policies.iter().map(Json::str).collect()),
        ),
        (
            "levels",
            Json::Arr(
                report
                    .levels
                    .iter()
                    .map(|level| {
                        Json::obj(vec![
                            ("label", Json::str(&level.label)),
                            ("structure", Json::str(&level.structure)),
                            ("precision", Json::str(&level.precision)),
                            ("sparsity", level.sparsity.into()),
                            (
                                "per_policy",
                                Json::Arr(level.per_policy.iter().map(level_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Write a rendered JSON document (newline-terminated) to `path`.
pub fn write_json_file(path: impl AsRef<Path>, json: &Json) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", json.render())
}

/// Scan the process arguments for `--json <path>` (the shared experiment
/// flag). Other flags are left for the caller; a trailing `--json` without
/// a path is an error.
pub fn json_arg() -> Result<Option<String>, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--json") {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => Ok(Some(path.clone())),
            _ => Err("--json requires a path".to_string()),
        },
    }
}
