//! Shared table formatting + shape-target checking for the experiment
//! binaries (`exp_fig3`, `exp_fig4`, `exp_fig7`, `pipeline_smoke`).

use darkside_core::{PipelineReport, PolicyGridReport};

/// Print the run provenance line every experiment starts with.
pub fn print_run_header(name: &str, report: &PipelineReport) {
    println!(
        "{name}: {} params, {} train frames, {} test frames, graph {} states / {} arcs",
        report.model_params,
        report.train_frames,
        report.test_frames,
        report.graph_states,
        report.graph_arcs
    );
    println!(
        "train: final loss {:.3}, frame accuracy {:.3}",
        report.final_train_loss, report.final_train_accuracy
    );
}

/// Print the per-level metric table (markdown-ish, pasteable into
/// EXPERIMENTS.md).
pub fn print_level_table(report: &PipelineReport) {
    println!(
        "| {:<7} | {:>8} | {:>10} | {:>9} | {:>7} | {:>10} | {:>9} |",
        "level", "sparsity", "confidence", "frame-acc", "WER%", "hyps/frame", "best-cost"
    );
    println!("|---------|----------|------------|-----------|---------|------------|-----------|");
    for level in &report.levels {
        println!(
            "| {:<7} | {:>7.1}% | {:>10.4} | {:>9.4} | {:>7.2} | {:>10.1} | {:>9.1} |",
            level.label,
            level.sparsity * 100.0,
            level.mean_confidence,
            level.frame_accuracy,
            level.wer_percent,
            level.mean_hypotheses,
            level.mean_best_cost
        );
    }
}

/// Print the per-level × per-policy search-effort table (`exp_fig7`;
/// markdown-ish, pasteable into EXPERIMENTS.md).
pub fn print_policy_grid(report: &PolicyGridReport) {
    println!(
        "| {:<7} | {:<7} | {:>10} | {:>7} | {:>9} | {:>9} | {:>9} |",
        "level", "policy", "hyps/frame", "WER%", "evictions", "overflows", "occupancy"
    );
    println!("|---------|---------|------------|---------|-----------|-----------|-----------|");
    for level in &report.levels {
        for cell in &level.per_policy {
            println!(
                "| {:<7} | {:<7} | {:>10.1} | {:>7.2} | {:>9} | {:>9} | {:>9.1} |",
                level.label,
                cell.policy,
                cell.mean_hypotheses,
                cell.wer_percent,
                cell.evictions,
                cell.overflows,
                cell.mean_table_occupancy
            );
        }
    }
}

/// Record one shape-target check; returns `ok` so callers can fold.
pub fn check(name: &str, ok: bool, detail: String) -> bool {
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}
