//! Criterion-style measurement core (the in-tree `criterion` stand-in).
//!
//! Protocol per benchmark: calibrate how many closure calls fill one sample
//! period, run warmup samples to settle caches/branch predictors/turbo, then
//! time `samples` batches and report per-op statistics. Medians (not means)
//! are the headline number so one preempted sample on a busy host does not
//! skew the record — the same choice criterion makes.

use std::time::Instant;

/// Knobs for one measurement.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Target wall-clock per sample; iterations are calibrated to fill it.
    pub min_sample_ms: f64,
    /// Timed samples (median taken over these).
    pub samples: usize,
    /// Untimed samples run first.
    pub warmup: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            min_sample_ms: 25.0,
            samples: 15,
            warmup: 3,
        }
    }
}

impl BenchOptions {
    /// For expensive single ops (e.g. naive 512³ GEMM at ~1 s/op): fewer,
    /// single-iteration samples.
    pub fn slow() -> Self {
        Self {
            min_sample_ms: 0.0,
            samples: 5,
            warmup: 1,
        }
    }
}

/// Statistics for one benchmark, in nanoseconds per operation.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    pub median_ns: f64,
    pub min_ns: f64,
    pub mean_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
    /// Arithmetic work per op, set via [`BenchResult::with_flops`].
    pub flops_per_op: Option<f64>,
    /// Memory traffic per op (operands + result, ideal-cache model), set
    /// via [`BenchResult::with_bytes`]. Lets bandwidth-bound kernels (the
    /// int8 paths) report the quantity they actually optimize.
    pub bytes_per_op: Option<f64>,
}

impl BenchResult {
    /// Attach a FLOP count so [`BenchResult::gflops`] and the JSON record
    /// can report throughput.
    pub fn with_flops(mut self, flops: f64) -> Self {
        self.flops_per_op = Some(flops);
        self
    }

    /// Attach a bytes-moved count so [`BenchResult::gbytes_per_s`] and the
    /// JSON record can report effective bandwidth.
    pub fn with_bytes(mut self, bytes: f64) -> Self {
        self.bytes_per_op = Some(bytes);
        self
    }

    pub fn gflops(&self) -> Option<f64> {
        self.flops_per_op.map(|f| f / self.median_ns)
    }

    /// Effective bandwidth in GB/s (bytes-moved over median time).
    pub fn gbytes_per_s(&self) -> Option<f64> {
        self.bytes_per_op.map(|b| b / self.median_ns)
    }

    /// Median-over-median speedup of `baseline` relative to `self`.
    pub fn speedup_over(&self, baseline: &BenchResult) -> f64 {
        baseline.median_ns / self.median_ns
    }

    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        let gf = self
            .gflops()
            .map(|g| format!("  {g:7.2} GFLOP/s"))
            .unwrap_or_default();
        format!(
            "{:<28} median {:>12.0} ns/op  (min {:>12.0}){gf}",
            self.name, self.median_ns, self.min_ns
        )
    }

    /// This result as a JSON object (schema documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let gflops = self
            .gflops()
            .map(|g| format!("{g:.4}"))
            .unwrap_or_else(|| "null".into());
        let flops = self
            .flops_per_op
            .map(|f| format!("{f:.0}"))
            .unwrap_or_else(|| "null".into());
        let bytes = self
            .bytes_per_op
            .map(|b| format!("{b:.0}"))
            .unwrap_or_else(|| "null".into());
        let gbps = self
            .gbytes_per_s()
            .map(|g| format!("{g:.4}"))
            .unwrap_or_else(|| "null".into());
        format!(
            concat!(
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},",
                "\"mean_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{},",
                "\"flops_per_op\":{},\"gflops\":{},",
                "\"bytes_per_op\":{},\"gbytes_per_s\":{}}}"
            ),
            self.name,
            self.median_ns,
            self.min_ns,
            self.mean_ns,
            self.samples,
            self.iters_per_sample,
            flops,
            gflops,
            bytes,
            gbps
        )
    }
}

/// Measure `f` with default options.
pub fn bench(name: &str, f: impl FnMut()) -> BenchResult {
    bench_with(name, BenchOptions::default(), f)
}

/// Measure `f`: calibrate, warm up, sample, summarize.
pub fn bench_with(name: &str, opts: BenchOptions, mut f: impl FnMut()) -> BenchResult {
    // Calibrate: double iterations until one batch fills the sample period.
    let mut iters: u64 = 1;
    loop {
        let t = time_batch(&mut f, iters);
        if t * 1e-6 >= opts.min_sample_ms || iters > (1 << 30) {
            break;
        }
        // Jump close to the target, then the loop re-checks.
        let scale = (opts.min_sample_ms / (t * 1e-6).max(1e-3)).ceil() as u64;
        iters = (iters * scale.clamp(2, 128)).min(1 << 30);
    }
    for _ in 0..opts.warmup {
        time_batch(&mut f, iters);
    }
    let mut per_op: Vec<f64> = (0..opts.samples.max(1))
        .map(|_| time_batch(&mut f, iters) / iters as f64)
        .collect();
    per_op.sort_by(|a, b| a.total_cmp(b));
    let median = if per_op.len() % 2 == 1 {
        per_op[per_op.len() / 2]
    } else {
        0.5 * (per_op[per_op.len() / 2 - 1] + per_op[per_op.len() / 2])
    };
    BenchResult {
        name: name.to_string(),
        median_ns: median,
        min_ns: per_op[0],
        mean_ns: per_op.iter().sum::<f64>() / per_op.len() as f64,
        samples: per_op.len(),
        iters_per_sample: iters,
        flops_per_op: None,
        bytes_per_op: None,
    }
}

fn time_batch(f: &mut impl FnMut(), iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_op() {
        let mut x = 0u64;
        let r = bench_with(
            "noop-ish",
            BenchOptions {
                min_sample_ms: 0.5,
                samples: 5,
                warmup: 1,
            },
            || x = std::hint::black_box(x.wrapping_add(1)),
        );
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn json_shape() {
        let r = BenchResult {
            name: "x".into(),
            median_ns: 10.0,
            min_ns: 9.0,
            mean_ns: 10.5,
            samples: 3,
            iters_per_sample: 7,
            flops_per_op: Some(20.0),
            bytes_per_op: Some(30.0),
        }
        .to_json();
        assert!(r.contains("\"name\":\"x\""));
        assert!(r.contains("\"gflops\":2.0000"));
        assert!(r.contains("\"bytes_per_op\":30"));
        assert!(r.contains("\"gbytes_per_s\":3.0000"));
    }
}
