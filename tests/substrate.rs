//! Cross-crate integration tests for the ISSUE 1 compute substrate.
//!
//! These live on the root `darkside` package so the tier-1 verify
//! (`cargo build --release && cargo test -q`, which tests the root package)
//! exercises the hot paths end to end: blocked/parallel GEMM against the
//! naive oracle, CSR sparse kernels against dense, and batched frame scoring
//! through a pruned-and-rebuilt layer.

use darkside::nn::check::{assert_matrices_close, assert_slices_close, random_matrix, run_cases};
use darkside::nn::{gemm_naive, gemm_with_threads, Frame, FrameScorer, Matrix, Mlp, Rng};
use darkside::pruning::{prune_to_sparsity, Csr, PrunedAffine};

#[test]
fn blocked_parallel_gemm_matches_oracle_across_shapes() {
    run_cases(0x0D15EA5E, 25, |rng, _| {
        let m = rng.below(90);
        let n = rng.below(90);
        let k = rng.below(90);
        let a = random_matrix(rng, m, k, 1.0);
        let b = random_matrix(rng, k, n, 1.0);
        let mut want = Matrix::zeros(m, n);
        gemm_naive(m, n, k, a.as_slice(), b.as_slice(), want.as_mut_slice());
        let mut got = Matrix::zeros(m, n);
        gemm_with_threads(
            m,
            n,
            k,
            a.as_slice(),
            b.as_slice(),
            got.as_mut_slice(),
            1 + (m + n) % 5,
        );
        assert_matrices_close(&got, &want, 1e-4, &format!("gemm {m}x{n}x{k}"));
    });
}

#[test]
fn pruned_pipeline_scores_frames() {
    // Train-free end-to-end shape check: a paper-shape MLP scores an
    // utterance batch; its first hidden layer pruned to 90 % and served
    // from CSR matches the masked dense layer.
    let mut rng = Rng::new(0xDA4C);
    let mlp = Mlp::kaldi_style(40, 64, 4, 2, 9, &mut rng);
    let frames: Vec<Frame> = (0..31)
        .map(|_| Frame((0..40).map(|_| rng.normal()).collect()))
        .collect();
    let scores = mlp.score_frames(&frames);
    assert_eq!(scores.num_frames(), 31);
    assert_eq!(scores.num_classes(), 9);
    for i in 0..scores.num_frames() {
        let sum: f32 = scores.probs.row(i).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "frame {i} not a distribution");
        let (_, p) = scores.top1(i);
        assert!(p > 0.0 && p <= 1.0);
    }

    let darkside::nn::Layer::Affine(dense) = &mlp.layers[1] else {
        panic!("layer 1 should be the first hidden affine");
    };
    let pruned90 = prune_to_sparsity(&dense.w, 0.9, 0.01);
    let mut masked = dense.clone();
    pruned90.mask.apply(&mut masked.w);
    let sparse = PrunedAffine::from_dense(dense, &pruned90.mask);
    let x = random_matrix(&mut rng, 8, dense.in_dim(), 1.0);
    assert_matrices_close(
        &sparse.forward(&x),
        &masked.forward(&x),
        1e-4,
        "CSR layer vs masked dense layer",
    );
}

#[test]
fn csr_spmv_matches_dense_gemv() {
    let mut rng = Rng::new(0x0C52);
    let dense = Matrix::from_fn(96, 128, |_, _| {
        if rng.next_f64() < 0.9 {
            0.0
        } else {
            rng.normal()
        }
    });
    let csr = Csr::from_dense(&dense).unwrap();
    assert!(csr.sparsity() > 0.8);
    let x: Vec<f32> = (0..128).map(|_| rng.normal()).collect();
    let mut want = vec![0.0f32; 96];
    darkside::nn::gemv_naive(96, 128, dense.as_slice(), &x, &mut want);
    let mut got = vec![0.0f32; 96];
    csr.spmv(&x, &mut got);
    assert_slices_close(&got, &want, 1e-4, "spmv");
}

#[test]
fn experiment_grid_is_wired() {
    let grid = darkside::core::GridConfig::full_grid();
    assert_eq!(grid.len(), 12);
    assert_eq!(grid[11].label(), "NBest-90");
    assert_eq!(grid[11].prune.sparsity(), 0.9);
}
